"""Dead-code elimination: prune what constant folding proved dead.

Runs after :class:`~repro.lang.passes.fold.ConstFoldPass` and removes

* ``if (constant)`` — replaced by the taken arm,
* ``while (0)`` — removed entirely,
* statements after an unconditional ``return``,
* effect-free expression statements (a bare ``x;`` or ``42;``).

Profile hints on surviving branches are preserved untouched; hints on
*pruned* branches vanish with the branch, which is exactly right — the
branch no longer exists to lay out.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lang import ast
from repro.lang.passes.base import Pass
from repro.lang.passes.fold import replace_program


class DeadCodePass(Pass):
    """Prune branches, loops, and statements that can never run."""

    name = "dead-code"
    requires = ("folded",)
    provides = ("pruned",)

    def run(self, program, feedback, counters):
        self.counters = counters
        functions = [
            replace(fn, body=tuple(self._stmts(fn.body)))
            for fn in program.functions
        ]
        return replace_program(program, functions)

    def _stmts(self, stmts) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for pos, stmt in enumerate(stmts):
            pruned = self._stmt(stmt)
            out.extend(pruned)
            if pruned and isinstance(pruned[-1], ast.Return):
                dead = len(stmts) - pos - 1
                if dead:
                    self.counters["dead_statements"] += dead
                break  # §: code after return is unreachable
        return out

    def _stmt(self, stmt: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(stmt, ast.If):
            then = tuple(self._stmts(stmt.then))
            otherwise = tuple(self._stmts(stmt.otherwise))
            if isinstance(stmt.cond, ast.Num):
                self.counters["pruned_branches"] += 1
                return list(then if stmt.cond.value != 0 else otherwise)
            return [replace(stmt, then=then, otherwise=otherwise)]
        if isinstance(stmt, ast.While):
            if isinstance(stmt.cond, ast.Num) and stmt.cond.value == 0:
                self.counters["removed_loops"] += 1
                return []  # while(0): gone
            return [replace(stmt, body=tuple(self._stmts(stmt.body)))]
        if isinstance(stmt, ast.ExprStmt) and isinstance(
            stmt.value, (ast.Num, ast.Var)
        ):
            self.counters["dead_statements"] += 1
            return []  # effect-free statement: gone
        return [stmt]
