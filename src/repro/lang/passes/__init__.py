"""The Rel compiler's staged pass pipeline.

``optimize.py`` used to be a monolith — one function that folded,
pruned, and inlined in a single recursive sweep.  It is now a pipeline
of named passes mirroring the ``repro.pipeline`` stage discipline:
each pass declares what it ``requires`` and ``provides``, transforms
the AST functionally, and reports what it did through counters.

The standard pipelines (:func:`build_pipeline`):

========  =======================  =========================================
level     without feedback         with usable feedback
========  =======================  =========================================
0         (empty)                  branch-order, inline(pgo), layout
1         fold, dead-code          + branch-order first, inline(pgo),
                                   layout last
2         fold, dead-code,         same as level 1 + feedback — the profile
          inline(static)           replaces the static inline heuristic
========  =======================  =========================================

Ordering rationale: ``branch-order`` must run *first* because its
branch ordinals were assigned on the measured tree shape, before any
pass changes it; ``hot-cold-layout`` must run *last* because inlining
can delete routines and layout must permute the final routine set.
Profile passes are built in even when the feedback turns out to be
empty or stale — they no-op internally — so a zero-sample or
wrong-version profile makes PGO exactly the identity transform over
the static pipeline.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import LangError
from repro.lang import ast
from repro.lang.passes.base import Pass, PassTrace
from repro.lang.passes.branch import BranchOrderPass
from repro.lang.passes.deadcode import DeadCodePass
from repro.lang.passes.fold import ConstFoldPass
from repro.lang.passes.inline import (
    INLINE_BODY_LIMIT,
    LINKAGE_CYCLES,
    InlinePass,
)
from repro.lang.passes.layout import HotColdLayoutPass

__all__ = [
    "BranchOrderPass",
    "ConstFoldPass",
    "DeadCodePass",
    "HotColdLayoutPass",
    "INLINE_BODY_LIMIT",
    "InlinePass",
    "LINKAGE_CYCLES",
    "Pass",
    "PassTrace",
    "build_pipeline",
    "merge_counters",
    "run_passes",
]


def build_pipeline(level: int = 1, feedback=None) -> list[Pass]:
    """The standard pass list for an optimization level (+ feedback)."""
    if level not in (0, 1, 2):
        raise LangError(f"unknown optimization level {level!r}")
    passes: list[Pass] = []
    if feedback is not None:
        passes.append(BranchOrderPass())
    if level >= 1:
        passes.append(ConstFoldPass())
        passes.append(DeadCodePass())
    if level >= 2 or feedback is not None:
        passes.append(InlinePass(static=level >= 2))
    if feedback is not None:
        passes.append(HotColdLayoutPass())
    return passes


def run_passes(
    program: ast.Program, passes: list[Pass], feedback=None
) -> tuple[ast.Program, list[PassTrace]]:
    """Run ``passes`` in order, enforcing the requires/provides contract.

    Returns the transformed program and one :class:`PassTrace` per
    pass.  A pass whose ``requires`` has not been provided by an
    earlier pass is a pipeline construction bug and raises
    :class:`~repro.errors.LangError` — the compiler analogue of the
    analysis pipeline refusing to run stages out of order.
    """
    provided: set[str] = set()
    traces: list[PassTrace] = []
    for p in passes:
        missing = [req for req in p.requires if req not in provided]
        if missing:
            raise LangError(
                f"pass {p.name!r} requires {missing} but the pipeline "
                f"only provides {sorted(provided)}"
            )
        counters: dict[str, int] = defaultdict(int)
        program = p.run(program, feedback, counters)
        provided.update(p.provides)
        traces.append(PassTrace(p.name, dict(counters)))
    return program, traces


def merge_counters(traces: list[PassTrace]) -> dict[str, int]:
    """Fold every trace's counters into one ``pass.counter`` dict."""
    merged: dict[str, int] = {}
    for trace in traces:
        for key, value in trace.counters.items():
            merged[f"{trace.name}.{key}"] = value
    return merged
