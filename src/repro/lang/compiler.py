"""The Rel compiler driver: source text → assembly → executable.

``compile_source(text, profile=True)`` is the reproduction's
``cc -pg``: the profiling instrumentation is a compilation option, not
a source-level concern, exactly as §3 describes.
"""

from __future__ import annotations

from repro.lang.codegen import generate
from repro.lang.optimize import optimize
from repro.lang.parser import parse
from repro.machine.assembler import assemble
from repro.machine.executable import Executable


def compile_to_asm(
    source: str, optimize_level: int = 0
) -> str:
    """Compile Rel source to VM assembly text (inspectable).

    ``optimize_level``: 0 = none; 1 = constant folding, branch pruning,
    dead-code removal; 2 = level 1 plus §6 inline expansion of trivial
    routines (which removes them from the program — and therefore from
    future profiles, the documented trade-off).
    """
    program = parse(source)
    if optimize_level >= 1:
        program = optimize(program, inline=optimize_level >= 2)
    return generate(program)


def compile_source(
    source: str,
    name: str = "a.out",
    profile: bool = False,
    count_blocks: bool = False,
    optimize_level: int = 0,
) -> Executable:
    """Compile Rel source all the way to an executable image.

    Arguments:
        source: Rel program text.
        name: program name recorded in the image.
        profile: plant monitoring prologues (the ``-pg`` flag).
        count_blocks: plant inline basic-block counters instead of or
            in addition to profiling.
        optimize_level: see :func:`compile_to_asm`.
    """
    return assemble(
        compile_to_asm(source, optimize_level=optimize_level),
        name=name,
        profile=profile,
        count_blocks=count_blocks,
    )
