"""The Rel compiler driver: source text → assembly → executable.

``compile_source(text, profile=True)`` is the reproduction's
``cc -pg``: the profiling instrumentation is a compilation option, not
a source-level concern, exactly as §3 describes.  ``compile(text,
profile=fb)`` is the PGO spelling: hand the driver a measured profile
(a :class:`~repro.lang.feedback.ProfileFeedback`, an analyzed
:class:`~repro.core.Profile`, raw :class:`~repro.core.ProfileData`, or
a gmon file path) and the pass pipeline consumes it at any
optimization level.
"""

from __future__ import annotations

from repro.lang.codegen import generate
from repro.lang.optimize import optimize
from repro.lang.parser import parse
from repro.machine.assembler import assemble
from repro.machine.executable import Executable


def _coerce_feedback(profile, program, name: str):
    """Accept the PGO argument in any of its natural shapes."""
    if profile is None:
        return None
    from repro.lang.feedback import (
        ProfileFeedback,
        feedback_from_data,
        feedback_from_profile,
    )

    if isinstance(profile, ProfileFeedback):
        return profile
    from repro.core.analysis import Profile
    from repro.core.profiledata import ProfileData

    if isinstance(profile, Profile):
        return feedback_from_profile(profile, program)
    if isinstance(profile, ProfileData):
        return feedback_from_data(program, profile, name=name)
    if isinstance(profile, (str, bytes)) or hasattr(profile, "__fspath__"):
        from repro.gmon import read_gmon

        return feedback_from_data(program, read_gmon(profile), name=name)
    raise TypeError(
        f"cannot use {type(profile).__name__!r} as profile feedback"
    )


def compile_to_asm(
    source: str, optimize_level: int = 0, feedback=None, name: str = "a.out"
) -> str:
    """Compile Rel source to VM assembly text (inspectable).

    ``optimize_level``: 0 = none; 1 = constant folding, branch pruning,
    dead-code removal; 2 = level 1 plus §6 inline expansion of trivial
    routines (which removes them from the program — and therefore from
    future profiles, the documented trade-off).

    ``feedback`` — see :func:`compile` — adds the profile-guided
    passes at any level.
    """
    program = parse(source)
    fb = _coerce_feedback(feedback, program, name)
    if optimize_level >= 1 or fb is not None:
        program = optimize(program, level=optimize_level, profile=fb)
    return generate(program)


def compile_source(
    source: str,
    name: str = "a.out",
    profile: bool = False,
    count_blocks: bool = False,
    optimize_level: int = 0,
    feedback=None,
) -> Executable:
    """Compile Rel source all the way to an executable image.

    Arguments:
        source: Rel program text.
        name: program name recorded in the image.
        profile: plant monitoring prologues (the ``-pg`` flag).
        count_blocks: plant inline basic-block counters instead of or
            in addition to profiling.
        optimize_level: see :func:`compile_to_asm`.
        feedback: optional measured profile for PGO (any shape
            :func:`compile` accepts).
    """
    return assemble(
        compile_to_asm(
            source, optimize_level=optimize_level, feedback=feedback,
            name=name,
        ),
        name=name,
        profile=profile,
        count_blocks=count_blocks,
    )


def compile(  # noqa: A001 - deliberate: the driver's natural name
    source: str,
    *,
    name: str = "a.out",
    level: int = 0,
    profile=None,
    instrument: bool = False,
    count_blocks: bool = False,
) -> Executable:
    """The PGO-aware front door: ``compile(source, profile=...)``.

    Arguments:
        source: Rel program text.
        name: program name recorded in the image.
        level: static optimization level (0/1/2).
        profile: measured feedback enabling the profile-guided passes —
            a ``ProfileFeedback``, an analyzed ``Profile``, raw
            ``ProfileData``, or a gmon file path.  Stale or empty
            profiles degrade to a no-op with a warning, never a wrong
            program.
        instrument: plant monitoring prologues in the *output* (so the
            optimized program can be re-measured — the loop's next
            iteration).
        count_blocks: plant inline basic-block counters.
    """
    return compile_source(
        source,
        name=name,
        profile=instrument,
        count_blocks=count_blocks,
        optimize_level=level,
        feedback=profile,
    )
