"""Recursive-descent parser for Rel.

Grammar (EBNF)::

    program   := (global | arraydecl | function)*
    global    := 'var' name ';'
    arraydecl := 'array' name '[' num ']' ';'
    function  := 'func' name '(' [name (',' name)*] ')' block
    block     := '{' stmt* '}'
    stmt      := name '=' expr ';'
               | name '[' expr ']' '=' expr ';'
               | 'if' '(' expr ')' block ['else' block]
               | 'while' '(' expr ')' block
               | 'return' [expr] ';'
               | 'print' expr ';'
               | 'burn' num ';'
               | expr ';'
    expr      := or
    or        := and ('||' and)*
    and       := cmp ('&&' cmp)*
    cmp       := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
    add       := mul (('+'|'-') mul)*
    mul       := unary (('*'|'/'|'%') unary)*
    unary     := ('-'|'!') unary | primary
    primary   := num | name '(' args ')' | name '[' expr ']' | name
               | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import LangError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize


def parse(source: str) -> ast.Program:
    """Parse Rel source text into a :class:`~repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, value=None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def expect(self, kind: str, value=None) -> Token:
        tok = self.peek()
        if not self.at(kind, value):
            want = value if value is not None else kind
            raise LangError(
                f"expected {want!r}, found {tok.value!r}", tok.line
            )
        return self.advance()

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        seen: set[str] = set()
        while not self.at("eof"):
            tok = self.peek()
            if self.at("kw", "var"):
                self.advance()
                name = self.expect("name").value
                self.expect("op", ";")
                self._declare(program, seen, name, tok.line)
                program.globals_.append(name)
            elif self.at("kw", "array"):
                self.advance()
                name = self.expect("name").value
                self.expect("op", "[")
                size = self.expect("num").value
                self.expect("op", "]")
                self.expect("op", ";")
                if size < 1:
                    raise LangError(f"array {name!r} needs size >= 1", tok.line)
                self._declare(program, seen, name, tok.line)
                program.arrays[name] = size
            elif self.at("kw", "func"):
                fn = self.parse_function()
                self._declare(program, seen, fn.name, fn.line)
                program.functions.append(fn)
            else:
                raise LangError(
                    f"expected a declaration, found {tok.value!r}", tok.line
                )
        if not any(f.name == "main" for f in program.functions):
            raise LangError("program has no 'main' function")
        return program

    @staticmethod
    def _declare(program, seen: set[str], name: str, line: int) -> None:
        if name in seen:
            raise LangError(f"duplicate top-level name {name!r}", line)
        seen.add(name)

    def parse_function(self) -> ast.Function:
        start = self.expect("kw", "func")
        name = self.expect("name").value
        self.expect("op", "(")
        params: list[str] = []
        if not self.at("op", ")"):
            params.append(self.expect("name").value)
            while self.at("op", ","):
                self.advance()
                params.append(self.expect("name").value)
        if len(set(params)) != len(params):
            raise LangError(f"duplicate parameter in {name!r}", start.line)
        self.expect("op", ")")
        body = self.parse_block()
        return ast.Function(name, tuple(params), body, start.line)

    def parse_block(self) -> tuple[ast.Stmt, ...]:
        self.expect("op", "{")
        stmts: list[ast.Stmt] = []
        while not self.at("op", "}"):
            stmts.append(self.parse_statement())
        self.expect("op", "}")
        return tuple(stmts)

    # -- statements ------------------------------------------------------------------

    def parse_statement(self) -> ast.Stmt:
        tok = self.peek()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "while"):
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            body = self.parse_block()
            return ast.While(cond, body, tok.line)
        if self.at("kw", "return"):
            self.advance()
            value = None if self.at("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return ast.Return(value, tok.line)
        if self.at("kw", "print"):
            self.advance()
            value = self.parse_expr()
            self.expect("op", ";")
            return ast.Print(value, tok.line)
        if self.at("kw", "burn"):
            self.advance()
            cycles = self.expect("num").value
            self.expect("op", ";")
            return ast.Burn(cycles, tok.line)
        if self.at("name"):
            # could be assignment, indexed assignment, or expression
            if self.tokens[self.pos + 1].kind == "op":
                nxt = self.tokens[self.pos + 1].value
                if nxt == "=":
                    name = self.advance().value
                    self.advance()  # '='
                    value = self.parse_expr()
                    self.expect("op", ";")
                    return ast.Assign(name, value, tok.line)
                if nxt == "[" and self._is_indexed_assignment():
                    name = self.advance().value
                    self.advance()  # '['
                    index = self.parse_expr()
                    self.expect("op", "]")
                    self.expect("op", "=")
                    value = self.parse_expr()
                    self.expect("op", ";")
                    return ast.AssignIndex(name, index, value, tok.line)
        value = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(value, tok.line)

    def _is_indexed_assignment(self) -> bool:
        """Lookahead: does ``name[ … ]`` continue with ``=``?"""
        depth = 0
        i = self.pos + 1  # at '['
        while i < len(self.tokens):
            tok = self.tokens[i]
            if tok.kind == "op" and tok.value == "[":
                depth += 1
            elif tok.kind == "op" and tok.value == "]":
                depth -= 1
                if depth == 0:
                    nxt = self.tokens[i + 1] if i + 1 < len(self.tokens) else None
                    return (
                        nxt is not None
                        and nxt.kind == "op"
                        and nxt.value == "="
                    )
            elif tok.kind == "eof":
                break
            i += 1
        return False

    def parse_if(self) -> ast.If:
        tok = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_block()
        otherwise: tuple[ast.Stmt, ...] = ()
        if self.at("kw", "else"):
            self.advance()
            if self.at("kw", "if"):
                otherwise = (self.parse_if(),)
            else:
                otherwise = self.parse_block()
        return ast.If(cond, then, otherwise, tok.line)

    # -- expressions ---------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        node = self.parse_and()
        while self.at("op", "||"):
            line = self.advance().line
            node = ast.Binary("||", node, self.parse_and(), line)
        return node

    def parse_and(self) -> ast.Expr:
        node = self.parse_cmp()
        while self.at("op", "&&"):
            line = self.advance().line
            node = ast.Binary("&&", node, self.parse_cmp(), line)
        return node

    def parse_cmp(self) -> ast.Expr:
        node = self.parse_add()
        if self.peek().kind == "op" and self.peek().value in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            op = self.advance()
            node = ast.Binary(op.value, node, self.parse_add(), op.line)
        return node

    def parse_add(self) -> ast.Expr:
        node = self.parse_mul()
        while self.peek().kind == "op" and self.peek().value in ("+", "-"):
            op = self.advance()
            node = ast.Binary(op.value, node, self.parse_mul(), op.line)
        return node

    def parse_mul(self) -> ast.Expr:
        node = self.parse_unary()
        while self.peek().kind == "op" and self.peek().value in ("*", "/", "%"):
            op = self.advance()
            node = ast.Binary(op.value, node, self.parse_unary(), op.line)
        return node

    def parse_unary(self) -> ast.Expr:
        if self.peek().kind == "op" and self.peek().value in ("-", "!"):
            op = self.advance()
            return ast.Unary(op.value, self.parse_unary(), op.line)
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            return ast.Num(tok.value, tok.line)
        if tok.kind == "name":
            self.advance()
            if self.at("op", "("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.at("op", ")"):
                    args.append(self.parse_expr())
                    while self.at("op", ","):
                        self.advance()
                        args.append(self.parse_expr())
                self.expect("op", ")")
                return ast.Call(tok.value, tuple(args), tok.line)
            if self.at("op", "["):
                self.advance()
                index = self.parse_expr()
                self.expect("op", "]")
                return ast.Index(tok.value, index, tok.line)
            return ast.Var(tok.value, tok.line)
        if self.at("op", "("):
            self.advance()
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        raise LangError(f"expected an expression, found {tok.value!r}", tok.line)
