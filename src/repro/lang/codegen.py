"""Code generation: Rel AST → VM assembly text.

A tree-walking generator with the classic stack discipline: every
expression leaves exactly one value on the operand stack; every
statement leaves the stack balanced.  The output is ordinary assembly
for :mod:`repro.machine.assembler`, so the profiling option (MCOUNT
prologues) and block counting arrive there, not here — the compiler
"requires no planning on part of a programmer".

Name resolution is C-flavoured:

* parameters and names assigned in a function are locals (slot
  numbered; locals read before their first assignment are zero, like
  the VM's frames);
* a name declared ``var`` or ``array`` at top level is a global,
  *unless* shadowed by a local assignment... which cannot happen: a
  name assigned in a function that is also a declared global writes
  the global (there is no local declaration syntax, so globals win).

Two things feed the PGO loop from here:

* profile-feedback **hints** on the tree (``If.likely``,
  ``While.rotate``) select alternative lowerings with identical
  semantics and instruction counts but cheaper measured-hot paths;
* :func:`generate_mapped` additionally returns a :class:`SourceMap` —
  per-function call-site instruction indexes and per-branch
  instruction spans — which is how a gmon file's addresses find their
  way back onto AST nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LangError
from repro.lang import ast

#: Arithmetic and comparison opcodes by source operator.
_BINOPS = {
    "+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
    "==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE",
}


class Layout:
    """Global segment layout and function signatures.

    ``program.functions`` order *is* text-segment order: the hot/cold
    layout pass permutes that list and nothing else, so the code
    generator stays a faithful, order-preserving lowering.
    """

    def __init__(self, program: ast.Program):
        self.scalar_slot: dict[str, int] = {}
        self.array_base: dict[str, int] = {}
        offset = 0
        for name in program.globals_:
            self.scalar_slot[name] = offset
            offset += 1
        for name, size in program.arrays.items():
            self.array_base[name] = offset
            offset += size
        self.num_globals = offset
        self.arity = {f.name: len(f.params) for f in program.functions}


#: Backwards-compatible private alias (pre-pipeline name).
_Layout = Layout


# -- the source map ------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A half-open range of *function-local* instruction indexes."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class CallSite:
    """One emitted CALL: its callee and local instruction index."""

    callee: str
    index: int


@dataclass(frozen=True)
class BranchSpans:
    """Where one If/While landed in its function's instructions.

    ``ordinal`` is the branch's position in the canonical pre-order
    walk (:func:`repro.lang.ast.iter_branch_nodes`) — *not* emission
    order, so a hint that swaps arm layout does not renumber anything.
    ``cond`` includes the dispatch jump; for an ``if``, ``then`` /
    ``otherwise`` cover the arms (including a join jump emitted inside
    the arm); for a ``while``, ``then`` covers the loop body and
    ``otherwise`` is empty.
    """

    kind: str  # "if" | "while"
    ordinal: int
    line: int
    cond: Span
    then: Span
    otherwise: Span


@dataclass
class FunctionMap:
    """Source map for one function (indexes are pre-prologue local)."""

    name: str
    size: int = 0
    sites: list[CallSite] = field(default_factory=list)
    branches: list[BranchSpans] = field(default_factory=list)


@dataclass
class SourceMap:
    """Per-function maps, keyed by routine name."""

    functions: dict[str, FunctionMap] = field(default_factory=dict)


def _terminates(stmts) -> bool:
    """Whether control can never fall off the end of ``stmts``.

    Conservative: a trailing ``return``, or a trailing ``if``/``else``
    both of whose arms terminate.  Used to elide the unreachable code
    a naive lowering would emit after such a tail — the implicit
    ``return 0`` epilogue and the join jump of a returning arm — so
    compiled routines contain no blocks the checker's reachability
    pass (GP101) could flag.
    """
    if not stmts:
        return False
    last = stmts[-1]
    if isinstance(last, ast.Return):
        return True
    if isinstance(last, ast.If) and last.otherwise:
        return _terminates(last.then) and _terminates(last.otherwise)
    return False


def generate(program: ast.Program) -> str:
    """The whole program's assembly text."""
    asm, _ = _generate(program, mapped=False)
    return asm


def generate_mapped(program: ast.Program) -> tuple[str, SourceMap]:
    """Assembly text plus the :class:`SourceMap` for feedback mapping.

    The assembly is byte-identical to :func:`generate`'s — the map is
    recorded on the side, never woven into the output.
    """
    asm, smap = _generate(program, mapped=True)
    return asm, smap


def _generate(program: ast.Program, mapped: bool) -> tuple[str, SourceMap]:
    layout = Layout(program)
    smap = SourceMap()
    parts = []
    if layout.num_globals:
        parts.append(f".globals {layout.num_globals}")
    for fn in program.functions:
        gen = _FunctionCodegen(layout, fn, record=mapped)
        parts.append(gen.generate())
        if mapped:
            smap.functions[fn.name] = gen.map
    return "\n".join(parts) + "\n", smap


class _FunctionCodegen:
    def __init__(self, layout: Layout, fn: ast.Function, record: bool = False):
        self.layout = layout
        self.fn = fn
        self.lines: list[str] = []
        self.slots: dict[str, int] = {}
        self.labels = 0
        self.count = 0  # instructions emitted so far (local index)
        self.map = FunctionMap(fn.name) if record else None
        self._ordinals = (
            {
                id(node): i
                for i, node in enumerate(ast.iter_branch_nodes(fn.body))
            }
            if record
            else None
        )
        for param in fn.params:
            self.slots[param] = len(self.slots)
        self._collect_locals(fn.body)

    # -- helpers -------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)
        self.count += 1

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self.labels += 1
        return f"_L{self.labels}_{hint}"

    def _collect_locals(self, stmts) -> None:
        """Pre-scan assignment targets so forward reads resolve."""
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if stmt.name not in self.layout.scalar_slot:
                    self.slots.setdefault(stmt.name, len(self.slots))
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then)
                self._collect_locals(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body)

    def _record_branch(self, stmt, kind, cond, then, otherwise) -> None:
        if self.map is None:
            return
        self.map.branches.append(
            BranchSpans(
                kind,
                self._ordinals[id(stmt)],
                stmt.line,
                Span(*cond),
                Span(*then),
                Span(*otherwise),
            )
        )

    # -- entry point ----------------------------------------------------------------

    def generate(self) -> str:
        self.lines.append(f".func {self.fn.name}")
        # prologue: pop arguments into their slots (last argument is on
        # top of the stack)
        for i in reversed(range(len(self.fn.params))):
            self.emit(f"STORE {i}")
        for stmt in self.fn.body:
            self.statement(stmt)
        if not _terminates(self.fn.body):
            # implicit 'return 0' for the control paths that can fall
            # off the end; a body every path returns from gets no
            # unreachable epilogue (the checker's GP101 would flag it)
            self.emit("PUSH 0")
            self.emit("RET")
        self.lines.append(".end")
        if self.map is not None:
            self.map.size = self.count
        return "\n".join(self.lines)

    # -- statements --------------------------------------------------------------------

    def statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.expression(stmt.value)
            if stmt.name in self.slots:
                self.emit(f"STORE {self.slots[stmt.name]}")
            elif stmt.name in self.layout.scalar_slot:
                self.emit(f"GSTORE {self.layout.scalar_slot[stmt.name]}")
            else:  # pragma: no cover - _collect_locals guarantees a slot
                raise LangError(f"cannot assign {stmt.name!r}", stmt.line)
        elif isinstance(stmt, ast.AssignIndex):
            base = self._array_base(stmt.array, stmt.line)
            self.expression(stmt.value)
            self.expression(stmt.index)
            if base:
                self.emit(f"PUSH {base}")
                self.emit("ADD")
            self.emit("GSTOREI")
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.expression(stmt.value)
            else:
                self.emit("PUSH 0")
            self.emit("RET")
        elif isinstance(stmt, ast.Print):
            self.expression(stmt.value)
            self.emit("OUT")
        elif isinstance(stmt, ast.Burn):
            if stmt.cycles < 0:
                raise LangError("burn needs a non-negative count", stmt.line)
            self.emit(f"WORK {stmt.cycles}")
        elif isinstance(stmt, ast.ExprStmt):
            self.expression(stmt.value)
            self.emit("POP")
        else:  # pragma: no cover - exhaustive
            raise LangError(f"unknown statement {stmt!r}")

    def _gen_if(self, stmt: ast.If) -> None:
        if stmt.likely == "then" and stmt.otherwise:
            # Profile-guided arm swap: the measured-likely then-arm
            # falls through (JNZ is the rare jump), the cold else-arm
            # pays the join jump.  Same instruction count as the
            # default form; the saved JMP moves to the cold path.
            then_label = self.new_label("then")
            end = self.new_label("endif")
            c0 = self.count
            self.expression(stmt.cond)
            self.emit(f"JNZ {then_label}")
            c1 = self.count
            e0 = self.count
            for s in stmt.otherwise:
                self.statement(s)
            join = not _terminates(stmt.otherwise)
            if join:
                self.emit(f"JMP {end}")
            e1 = self.count
            self.emit_label(then_label)
            t0 = self.count
            for s in stmt.then:
                self.statement(s)
            t1 = self.count
            if join:
                self.emit_label(end)
            self._record_branch(stmt, "if", (c0, c1), (t0, t1), (e0, e1))
            return
        otherwise = self.new_label("else")
        end = self.new_label("endif")
        c0 = self.count
        self.expression(stmt.cond)
        self.emit(f"JZ {otherwise if stmt.otherwise else end}")
        c1 = self.count
        t0 = self.count
        for s in stmt.then:
            self.statement(s)
        e0 = e1 = self.count
        end_used = not stmt.otherwise
        if stmt.otherwise:
            if not _terminates(stmt.then):
                self.emit(f"JMP {end}")
                end_used = True
            t1 = self.count
            self.emit_label(otherwise)
            e0 = self.count
            for s in stmt.otherwise:
                self.statement(s)
            e1 = self.count
        else:
            t1 = self.count
        if end_used:
            self.emit_label(end)
        self._record_branch(stmt, "if", (c0, c1), (t0, t1), (e0, e1))

    def _gen_while(self, stmt: ast.While) -> None:
        if stmt.rotate:
            # Profile-guided loop rotation: jump straight to a bottom
            # test, so each iteration pays one conditional jump instead
            # of a test-jump *and* a back-jump.  Same instruction
            # count; saves ~(iterations − 1) JMP executions per entry.
            test = self.new_label("looptest")
            body_label = self.new_label("loopbody")
            self.emit(f"JMP {test}")
            self.emit_label(body_label)
            b0 = self.count
            for s in stmt.body:
                self.statement(s)
            b1 = self.count
            self.emit_label(test)
            c0 = self.count
            self.expression(stmt.cond)
            self.emit(f"JNZ {body_label}")
            c1 = self.count
            self._record_branch(stmt, "while", (c0, c1), (b0, b1), (b1, b1))
            return
        loop = self.new_label("loop")
        end = self.new_label("endloop")
        self.emit_label(loop)
        c0 = self.count
        self.expression(stmt.cond)
        self.emit(f"JZ {end}")
        c1 = self.count
        b0 = self.count
        for s in stmt.body:
            self.statement(s)
        if not _terminates(stmt.body):
            self.emit(f"JMP {loop}")
        b1 = self.count
        self.emit_label(end)
        self._record_branch(stmt, "while", (c0, c1), (b0, b1), (b1, b1))

    # -- expressions -----------------------------------------------------------------------

    def expression(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Num):
            self.emit(f"PUSH {expr.value}")
        elif isinstance(expr, ast.Var):
            self._load_name(expr.name, expr.line)
        elif isinstance(expr, ast.Index):
            base = self._array_base(expr.array, expr.line)
            self.expression(expr.index)
            if base:
                self.emit(f"PUSH {base}")
                self.emit("ADD")
            self.emit("GLOADI")
        elif isinstance(expr, ast.Unary):
            self.expression(expr.operand)
            if expr.op == "-":
                self.emit("NEG")
            else:  # '!'
                self.emit("PUSH 0")
                self.emit("EQ")
        elif isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                self._short_circuit(expr)
            else:
                self.expression(expr.left)
                self.expression(expr.right)
                self.emit(_BINOPS[expr.op])
        elif isinstance(expr, ast.Call):
            arity = self.layout.arity.get(expr.name)
            if arity is None:
                raise LangError(f"unknown function {expr.name!r}", expr.line)
            if arity != len(expr.args):
                raise LangError(
                    f"{expr.name!r} takes {arity} argument(s), "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self.expression(arg)
            if self.map is not None:
                self.map.sites.append(CallSite(expr.name, self.count))
            self.emit(f"CALL {expr.name}")
        else:  # pragma: no cover - exhaustive
            raise LangError(f"unknown expression {expr!r}")

    def _short_circuit(self, expr: ast.Binary) -> None:
        end = self.new_label("bool")
        if expr.op == "&&":
            out = self.new_label("false")
            self.expression(expr.left)
            self.emit(f"JZ {out}")
            self.expression(expr.right)
            self.emit(f"JZ {out}")
            self.emit("PUSH 1")
            self.emit(f"JMP {end}")
            self.emit_label(out)
            self.emit("PUSH 0")
        else:  # '||'
            out = self.new_label("true")
            self.expression(expr.left)
            self.emit(f"JNZ {out}")
            self.expression(expr.right)
            self.emit(f"JNZ {out}")
            self.emit("PUSH 0")
            self.emit(f"JMP {end}")
            self.emit_label(out)
            self.emit("PUSH 1")
        self.emit_label(end)
        self.emit("NOP")  # anchor: labels always precede an instruction

    def _load_name(self, name: str, line: int) -> None:
        if name in self.slots:
            self.emit(f"LOAD {self.slots[name]}")
        elif name in self.layout.scalar_slot:
            self.emit(f"GLOAD {self.layout.scalar_slot[name]}")
        elif name in self.layout.array_base:
            raise LangError(f"{name!r} is an array; index it", line)
        else:
            raise LangError(f"undefined name {name!r}", line)

    def _array_base(self, name: str, line: int) -> int:
        if name not in self.layout.array_base:
            raise LangError(f"{name!r} is not an array", line)
        return self.layout.array_base[name]
