"""Code generation: Rel AST → VM assembly text.

A tree-walking generator with the classic stack discipline: every
expression leaves exactly one value on the operand stack; every
statement leaves the stack balanced.  The output is ordinary assembly
for :mod:`repro.machine.assembler`, so the profiling option (MCOUNT
prologues) and block counting arrive there, not here — the compiler
"requires no planning on part of a programmer".

Name resolution is C-flavoured:

* parameters and names assigned in a function are locals (slot
  numbered; locals read before their first assignment are zero, like
  the VM's frames);
* a name declared ``var`` or ``array`` at top level is a global,
  *unless* shadowed by a local assignment... which cannot happen: a
  name assigned in a function that is also a declared global writes
  the global (there is no local declaration syntax, so globals win).
"""

from __future__ import annotations

from repro.errors import LangError
from repro.lang import ast

#: Arithmetic and comparison opcodes by source operator.
_BINOPS = {
    "+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
    "==": "EQ", "!=": "NE", "<": "LT", "<=": "LE", ">": "GT", ">=": "GE",
}


class _Layout:
    """Global segment layout and function signatures."""

    def __init__(self, program: ast.Program):
        self.scalar_slot: dict[str, int] = {}
        self.array_base: dict[str, int] = {}
        offset = 0
        for name in program.globals_:
            self.scalar_slot[name] = offset
            offset += 1
        for name, size in program.arrays.items():
            self.array_base[name] = offset
            offset += size
        self.num_globals = offset
        self.arity = {f.name: len(f.params) for f in program.functions}


def generate(program: ast.Program) -> str:
    """The whole program's assembly text."""
    layout = _Layout(program)
    parts = []
    if layout.num_globals:
        parts.append(f".globals {layout.num_globals}")
    for fn in program.functions:
        parts.append(_FunctionCodegen(layout, fn).generate())
    return "\n".join(parts) + "\n"


class _FunctionCodegen:
    def __init__(self, layout: _Layout, fn: ast.Function):
        self.layout = layout
        self.fn = fn
        self.lines: list[str] = []
        self.slots: dict[str, int] = {}
        self.labels = 0
        for param in fn.params:
            self.slots[param] = len(self.slots)
        self._collect_locals(fn.body)

    # -- helpers -------------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self.labels += 1
        return f"_L{self.labels}_{hint}"

    def _collect_locals(self, stmts) -> None:
        """Pre-scan assignment targets so forward reads resolve."""
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if stmt.name not in self.layout.scalar_slot:
                    self.slots.setdefault(stmt.name, len(self.slots))
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then)
                self._collect_locals(stmt.otherwise)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body)

    # -- entry point ----------------------------------------------------------------

    def generate(self) -> str:
        self.lines.append(f".func {self.fn.name}")
        # prologue: pop arguments into their slots (last argument is on
        # top of the stack)
        for i in reversed(range(len(self.fn.params))):
            self.emit(f"STORE {i}")
        for stmt in self.fn.body:
            self.statement(stmt)
        # implicit 'return 0' so no control path falls off the end and
        # no generated label dangles past the last instruction
        self.emit("PUSH 0")
        self.emit("RET")
        self.lines.append(".end")
        return "\n".join(self.lines)

    # -- statements --------------------------------------------------------------------

    def statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self.expression(stmt.value)
            if stmt.name in self.slots:
                self.emit(f"STORE {self.slots[stmt.name]}")
            elif stmt.name in self.layout.scalar_slot:
                self.emit(f"GSTORE {self.layout.scalar_slot[stmt.name]}")
            else:  # pragma: no cover - _collect_locals guarantees a slot
                raise LangError(f"cannot assign {stmt.name!r}", stmt.line)
        elif isinstance(stmt, ast.AssignIndex):
            base = self._array_base(stmt.array, stmt.line)
            self.expression(stmt.value)
            self.expression(stmt.index)
            if base:
                self.emit(f"PUSH {base}")
                self.emit("ADD")
            self.emit("GSTOREI")
        elif isinstance(stmt, ast.If):
            otherwise = self.new_label("else")
            end = self.new_label("endif")
            self.expression(stmt.cond)
            self.emit(f"JZ {otherwise if stmt.otherwise else end}")
            for s in stmt.then:
                self.statement(s)
            if stmt.otherwise:
                self.emit(f"JMP {end}")
                self.emit_label(otherwise)
                for s in stmt.otherwise:
                    self.statement(s)
            self.emit_label(end)
        elif isinstance(stmt, ast.While):
            loop = self.new_label("loop")
            end = self.new_label("endloop")
            self.emit_label(loop)
            self.expression(stmt.cond)
            self.emit(f"JZ {end}")
            for s in stmt.body:
                self.statement(s)
            self.emit(f"JMP {loop}")
            self.emit_label(end)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.expression(stmt.value)
            else:
                self.emit("PUSH 0")
            self.emit("RET")
        elif isinstance(stmt, ast.Print):
            self.expression(stmt.value)
            self.emit("OUT")
        elif isinstance(stmt, ast.Burn):
            if stmt.cycles < 0:
                raise LangError("burn needs a non-negative count", stmt.line)
            self.emit(f"WORK {stmt.cycles}")
        elif isinstance(stmt, ast.ExprStmt):
            self.expression(stmt.value)
            self.emit("POP")
        else:  # pragma: no cover - exhaustive
            raise LangError(f"unknown statement {stmt!r}")

    # -- expressions -----------------------------------------------------------------------

    def expression(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Num):
            self.emit(f"PUSH {expr.value}")
        elif isinstance(expr, ast.Var):
            self._load_name(expr.name, expr.line)
        elif isinstance(expr, ast.Index):
            base = self._array_base(expr.array, expr.line)
            self.expression(expr.index)
            if base:
                self.emit(f"PUSH {base}")
                self.emit("ADD")
            self.emit("GLOADI")
        elif isinstance(expr, ast.Unary):
            self.expression(expr.operand)
            if expr.op == "-":
                self.emit("NEG")
            else:  # '!'
                self.emit("PUSH 0")
                self.emit("EQ")
        elif isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                self._short_circuit(expr)
            else:
                self.expression(expr.left)
                self.expression(expr.right)
                self.emit(_BINOPS[expr.op])
        elif isinstance(expr, ast.Call):
            arity = self.layout.arity.get(expr.name)
            if arity is None:
                raise LangError(f"unknown function {expr.name!r}", expr.line)
            if arity != len(expr.args):
                raise LangError(
                    f"{expr.name!r} takes {arity} argument(s), "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                self.expression(arg)
            self.emit(f"CALL {expr.name}")
        else:  # pragma: no cover - exhaustive
            raise LangError(f"unknown expression {expr!r}")

    def _short_circuit(self, expr: ast.Binary) -> None:
        end = self.new_label("bool")
        if expr.op == "&&":
            out = self.new_label("false")
            self.expression(expr.left)
            self.emit(f"JZ {out}")
            self.expression(expr.right)
            self.emit(f"JZ {out}")
            self.emit("PUSH 1")
            self.emit(f"JMP {end}")
            self.emit_label(out)
            self.emit("PUSH 0")
        else:  # '||'
            out = self.new_label("true")
            self.expression(expr.left)
            self.emit(f"JNZ {out}")
            self.expression(expr.right)
            self.emit(f"JNZ {out}")
            self.emit("PUSH 0")
            self.emit(f"JMP {end}")
            self.emit_label(out)
            self.emit("PUSH 1")
        self.emit_label(end)
        self.emit("NOP")  # anchor: labels always precede an instruction

    def _load_name(self, name: str, line: int) -> None:
        if name in self.slots:
            self.emit(f"LOAD {self.slots[name]}")
        elif name in self.layout.scalar_slot:
            self.emit(f"GLOAD {self.layout.scalar_slot[name]}")
        elif name in self.layout.array_base:
            raise LangError(f"{name!r} is an array; index it", line)
        else:
            raise LangError(f"undefined name {name!r}", line)

    def _array_base(self, name: str, line: int) -> int:
        if name not in self.layout.array_base:
            raise LangError(f"{name!r} is not an array", line)
        return self.layout.array_base[name]
