"""Tokenizer for the Rel language.

Token kinds: ``num`` (integer literals), ``name`` (identifiers),
``kw`` (reserved words), ``op`` (operators and punctuation), ``eof``.
Comments run from ``//`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LangError

KEYWORDS = frozenset(
    {"func", "var", "array", "if", "else", "while", "return", "print", "burn"}
)

#: Multi-character operators, longest first so '==' beats '='.
_OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
    "(", ")", "{", "}", "[", "]", ",", ";",
)


@dataclass(frozen=True)
class Token:
    """One lexeme with its source line (for error messages)."""

    kind: str   # num | name | kw | op | eof
    value: object
    line: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}:{self.value!r}@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Turn Rel source text into a token list ending with ``eof``."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("num", int(source[i:j]), line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "name"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LangError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", None, line))
    return tokens
