"""Rel: a small imperative language compiled to the VM.

§3 of the paper: "our compilers for C, Fortran77, and Pascal can
insert calls to a monitoring routine in the prologue for each routine.
Use of the monitoring routine requires no planning on part of a
programmer other than to request that augmented routine prologues be
produced during compilation."

This package is that compiler for the reproduction's machine: programs
are written in a small language (functions, integers, globals, one
global array, ``if``/``while``, short-circuit booleans, ``print``) and
compiled to VM assembly; passing ``profile=True`` — the ``-pg`` flag —
plants the monitoring prologues with zero source changes.  The
compiler is itself a recursive-descent parser feeding a tree-walking
code generator, i.e. exactly the kind of program §6 warns profiles
poorly ("recursive descent compilers ... grouped into a single
monolithic cycle") — profiling it with its own output is the dogfood
the authors describe.

Example::

    func fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    func main() {
        print fib(15);
    }

    >>> exe = compile_source(text, profile=True)   # "cc -pg"
"""

from repro.lang.compiler import compile, compile_source, compile_to_asm
from repro.lang.feedback import (
    ProfileFeedback,
    feedback_from_data,
    feedback_from_profile,
)
from repro.lang.optimize import optimize
from repro.lang.parser import parse
from repro.lang.pgo import PGOResult, PGORound, run_pgo
from repro.lang.pretty import pretty
from repro.lang.programs import REL_PROGRAMS

__all__ = [
    "PGOResult",
    "PGORound",
    "ProfileFeedback",
    "REL_PROGRAMS",
    "compile",
    "compile_source",
    "compile_to_asm",
    "feedback_from_data",
    "feedback_from_profile",
    "optimize",
    "parse",
    "pretty",
    "run_pgo",
]
