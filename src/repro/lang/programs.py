"""Canned Rel programs mirroring the assembly workload library.

Having both lets tests cross-validate the compiler (the Rel fib must
compute what the hand-written fib computes) and lets examples show
profiles of *compiled* code — where routine shape is the compiler's
choice, as it was for the paper's C/Fortran/Pascal users.
"""

from __future__ import annotations

from typing import Callable


def fib(n: int = 15) -> str:
    """Naive Fibonacci (self-recursion)."""
    return f"""
func fib(n) {{
    if (n < 2) {{ return n; }}
    return fib(n - 1) + fib(n - 2);
}}
func main() {{
    print fib({n});
}}
"""


def even_odd(n: int = 40) -> str:
    """Mutual recursion (the minimal call graph cycle)."""
    return f"""
func even(n) {{
    if (n == 0) {{ return 1; }}
    return odd(n - 1);
}}
func odd(n) {{
    if (n == 0) {{ return 0; }}
    return even(n - 1);
}}
func main() {{
    print even({n});
}}
"""


def abstraction(iterations: int = 50) -> str:
    """The §6 shape: calculations funnel through shared formatting."""
    return f"""
func calc1(v) {{ burn 5; return format1(v); }}
func calc2(v) {{ burn 5; return format2(v); }}
func calc3(v) {{ burn 5; return format2(v); }}
func format1(v) {{ burn 40; return write(v); }}
func format2(v) {{ burn 40; return write(v); }}
func write(v) {{ burn 15; print v; return v; }}
func main() {{
    i = {iterations};
    while (i > 0) {{
        calc1(1);
        calc2(2);
        calc3(3);
        i = i - 1;
    }}
}}
"""


def sieve(limit: int = 200) -> str:
    """Sieve of Eratosthenes over the global array: counts primes.

    A classic array workload the assembly library lacks; the inner
    marking loop concentrates self time, the outer scan drives it.
    """
    return f"""
array flags[{limit}];
func mark_multiples(p) {{
    m = p * p;
    while (m < {limit}) {{
        flags[m] = 1;
        m = m + p;
    }}
    return 0;
}}
func count_primes() {{
    count = 0;
    i = 2;
    while (i < {limit}) {{
        if (flags[i] == 0) {{
            count = count + 1;
            mark_multiples(i);
        }}
        i = i + 1;
    }}
    return count;
}}
func main() {{
    print count_primes();
}}
"""


def gcd_chain(rounds: int = 60) -> str:
    """Euclid's algorithm in a loop: data-dependent recursion depth."""
    return f"""
func gcd(a, b) {{
    if (b == 0) {{ return a; }}
    return gcd(b, a % b);
}}
func main() {{
    total = 0;
    i = 1;
    while (i <= {rounds}) {{
        total = total + gcd(i * 91, i + 133);
        i = i + 1;
    }}
    print total;
}}
"""


def classify(rounds: int = 300) -> str:
    """Skewed branching: the common if-arm sits on the taken-jump path.

    Seven in eight values are "ordinary" — but the source spells the
    ordinary case as the *then*-arm, which the default lowering makes
    pay a join jump on every execution.  A measured profile tells the
    branch-ordering pass to put the common arm on the fall-through
    path instead; static analysis cannot know which arm that is.
    """
    return f"""
func weigh(v) {{
    if (v % 8 != 0) {{
        burn 6;
        return v;
    }} else {{
        burn 45;
        return v * 2;
    }}
}}
func main() {{
    total = 0;
    i = 1;
    while (i <= {rounds}) {{
        total = total + weigh(i);
        i = i + 1;
    }}
    print total;
}}
"""


#: Registry, like :data:`repro.machine.programs.PROGRAMS`.
REL_PROGRAMS: dict[str, Callable[..., str]] = {
    "fib": fib,
    "even_odd": even_odd,
    "abstraction": abstraction,
    "sieve": sieve,
    "gcd_chain": gcd_chain,
    "classify": classify,
}
