"""Map a measured profile back onto the Rel AST: the PGO feedback layer.

gprof's output answers "where did the time go?" in terms of addresses
and symbols.  The optimizer needs the same answers in terms of AST
nodes: how many times was *this function* called (arc counts), how
much time is *its own* versus *its descendants'* (the §4 propagation),
and which side of *this if* actually ran (histogram mass over the code
generator's branch spans).  :class:`ProfileFeedback` is that
translation, built one of two ways:

* :meth:`ProfileFeedback.from_measurement` — the exact path: the
  program was compiled with :func:`~repro.lang.codegen.generate_mapped`
  and run; the :class:`~repro.lang.codegen.SourceMap` pins every call
  site and branch arm to an address range, so hints come straight from
  bucket mass and per-site arc counts.
* :func:`feedback_from_profile` — the name-level path for an
  already-analyzed :class:`~repro.core.Profile`: call counts and §4
  times map by routine name; no branch hints (addresses are gone).

**Staleness is a first-class outcome.**  A gmon file from a different
program version must never produce a wrong layout: if the histogram
bounds disagree with the executable, or any recorded arc's call site
is not actually a CALL to the recorded callee entry, the feedback
marks itself stale, keeps a warning trail, and every profile pass
degrades to the identity transform.  The same holds for a zero-sample,
zero-call profile — no data, no transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.lang import ast
from repro.lang.codegen import SourceMap, generate_mapped
from repro.lang.passes.branch import ROTATE, SWAP
from repro.machine.isa import INSTRUCTION_SIZE, COSTS, Op

#: The measured-likely arm must beat the other by this factor before a
#: branch is reordered (hysteresis against sampling noise).
SWAP_MARGIN = 1.25

#: Minimum measured mean iterations per loop entry before rotation
#: pays (at 1 iteration the two forms cost the same).
ROTATE_MIN_AVG_ITERS = 2.0

#: Evidence floors: a branch decision needs at least this many ticks
#: landing in the branch's spans or this many calls through a site in
#: them — below that the measurement is noise and the default layout
#: stands.
MIN_TICK_EVIDENCE = 2
MIN_CALL_EVIDENCE = 4


@dataclass
class ProfileFeedback:
    """Measured facts about one program, keyed by AST-level names.

    Attributes:
        arc_counts: dynamic calls per (caller, callee) routine pair.
        spontaneous: calls into a routine with no recorded caller
            (program entry, interrupted prologues).
        self_sec: §4 per-routine self seconds.
        total_sec: §4 per-routine self+descendants seconds.
        cycle_groups: member tuples of every call-graph cycle, so
            layout can keep them adjacent.
        branch_hints: ``(function, branch ordinal) → "swap"|"rotate"``
            decisions for the branch-order pass (exact path only).
        total_ticks: histogram samples backing the time figures.
        total_calls: dynamic calls backing the count figures.
        stale: the profile does not match this program; all data is
            advisory-only and :attr:`empty` is forced True.
        warnings: human-readable degradation trail (why stale, what
            was skipped).
        profile: the underlying analyzed Profile, when the builder ran
            the §4 pipeline (for reporting; not used by passes).
    """

    arc_counts: dict[tuple[str, str], int] = field(default_factory=dict)
    spontaneous: dict[str, int] = field(default_factory=dict)
    self_sec: dict[str, float] = field(default_factory=dict)
    total_sec: dict[str, float] = field(default_factory=dict)
    cycle_groups: list[tuple[str, ...]] = field(default_factory=list)
    branch_hints: dict[tuple[str, int], str] = field(default_factory=dict)
    total_ticks: int = 0
    total_calls: int = 0
    stale: bool = False
    warnings: list[str] = field(default_factory=list)
    profile: object = None

    @property
    def empty(self) -> bool:
        """No usable measurements: stale, or zero samples and calls."""
        return self.stale or (self.total_ticks == 0 and self.total_calls == 0)

    # -- queries the passes ask ------------------------------------------

    def calls_into(self, name: str) -> int:
        """Total measured dynamic calls into ``name`` (any caller)."""
        direct = sum(
            count
            for (_, callee), count in self.arc_counts.items()
            if callee == name
        )
        return direct + self.spontaneous.get(name, 0)

    def calls(self, caller: str, callee: str) -> int:
        """Measured dynamic calls along one arc."""
        return self.arc_counts.get((caller, callee), 0)

    def self_seconds(self, name: str) -> float:
        """§4 self seconds of a routine (0.0 if never sampled)."""
        return self.self_sec.get(name, 0.0)

    def total_seconds(self, name: str) -> float:
        """§4 self+descendants seconds of a routine."""
        return self.total_sec.get(name, 0.0)

    def describe(self) -> str:
        """One-line summary for CLI reporting."""
        if self.stale:
            return "stale profile (ignored): " + "; ".join(self.warnings)
        if self.empty:
            return "empty profile (no samples, no calls): identity transform"
        return (
            f"{self.total_ticks} samples, {self.total_calls} calls, "
            f"{len(self.branch_hints)} branch hint(s), "
            f"{len(self.cycle_groups)} cycle(s)"
        )

    # -- the exact (address-level) builder -------------------------------

    @classmethod
    def from_measurement(
        cls,
        program: ast.Program,
        exe,
        smap: SourceMap,
        data: ProfileData,
        cycles_per_tick: int = 100,
        session=None,
    ) -> "ProfileFeedback":
        """Build feedback from a measured run of this exact program.

        ``exe`` must be the profiled executable compiled from
        ``program`` via :func:`~repro.lang.codegen.generate_mapped`
        (whose ``smap`` this is), and ``data`` a gmon capture of a run
        of that executable.  Mismatches are detected, not trusted.
        """
        fb = cls()
        _validate(fb, program, exe, data)
        if fb.stale:
            return fb
        fb.total_ticks = data.histogram.total_ticks if data.histogram else 0
        fb.total_calls = data.total_calls

        from repro.pipeline.session import ProfileSession

        if session is None:
            session = ProfileSession.from_executable(exe)
        profile = session.analyze(data)
        fb.profile = profile

        # §4 propagation: per-routine self and self+descendant mass.
        prop = profile.propagation
        fb.self_sec = dict(prop.routine_self)
        fb.total_sec = {
            name: prop.routine_self.get(name, 0.0)
            + prop.routine_child.get(name, 0.0)
            for name in set(prop.routine_self) | set(prop.routine_child)
        }
        # Arc counts by routine-name pair, spontaneous counts aside.
        graph = profile.graph
        for caller in graph.nodes():
            for callee, arc in graph.children(caller).items():
                fb.arc_counts[(caller, callee)] = arc.count
        for node in graph.nodes():
            count = graph.spontaneous_calls(node)
            if count:
                fb.spontaneous[node] = count
        # §4 cycles: member groups for the layout pass.
        fb.cycle_groups = [
            tuple(c.members) for c in profile.numbered.cycles
        ]
        _decide_branch_hints(fb, program, exe, smap, data, cycles_per_tick)
        return fb


# -- staleness validation ------------------------------------------------------


def _validate(fb: ProfileFeedback, program, exe, data: ProfileData) -> None:
    """Reject profiles that demonstrably came from another program."""
    hist = data.histogram
    if hist is not None and (
        hist.low_pc != exe.low_pc or hist.high_pc != exe.high_pc
    ):
        fb.stale = True
        fb.warnings.append(
            f"histogram covers [{hist.low_pc:#x}, {hist.high_pc:#x}) but "
            f"the program's text segment is "
            f"[{exe.low_pc:#x}, {exe.high_pc:#x}): profile is from a "
            "different program version; feedback disabled"
        )
        return
    entries = {f.entry for f in exe.functions if f.profiled}
    for arc in data.condensed_arcs():
        if arc.self_pc not in entries:
            fb.stale = True
            fb.warnings.append(
                f"arc callee {arc.self_pc:#x} is not a profiled routine "
                "entry: profile is from a different program version; "
                "feedback disabled"
            )
            return
        if arc.from_pc == 0:
            continue  # spontaneous (program entry / interrupted prologue)
        idx, rem = divmod(arc.from_pc, INSTRUCTION_SIZE)
        ins = (
            exe.instructions[idx]
            if rem == 0 and 0 <= idx < len(exe.instructions)
            else None
        )
        if ins is None or ins.op is not Op.CALL or ins.operand != arc.self_pc:
            fb.stale = True
            fb.warnings.append(
                f"arc site {arc.from_pc:#x} is not a CALL to "
                f"{arc.self_pc:#x}: profile is from a different program "
                "version; feedback disabled"
            )
            return
    names = {fn.name for fn in program.functions}
    image_names = {f.name for f in exe.functions}
    if names != image_names:  # pragma: no cover - misuse guard
        fb.stale = True
        fb.warnings.append(
            "executable routines do not match the program being "
            "optimized; feedback disabled"
        )


# -- branch decisions ----------------------------------------------------------


def _decide_branch_hints(
    fb: ProfileFeedback,
    program: ast.Program,
    exe,
    smap: SourceMap,
    data: ProfileData,
    cycles_per_tick: int,
) -> None:
    """Turn span mass and per-site arc counts into swap/rotate hints."""
    hist = data.histogram
    site_calls: dict[int, int] = {}
    for arc in data.condensed_arcs():
        if arc.from_pc:
            site_calls[arc.from_pc] = site_calls.get(arc.from_pc, 0) + arc.count

    for fn in program.functions:
        fmap = smap.functions.get(fn.name)
        if fmap is None:
            continue
        image_fn = exe.function_named(fn.name)
        base = image_fn.entry + (INSTRUCTION_SIZE if image_fn.profiled else 0)

        def addr_range(span) -> tuple[int, int]:
            return (
                base + span.start * INSTRUCTION_SIZE,
                base + span.end * INSTRUCTION_SIZE,
            )

        def ticks(span) -> float:
            if hist is None or not len(span):
                return 0.0
            return _ticks_in(hist, *addr_range(span))

        def max_site(span) -> int:
            lo, hi = addr_range(span)
            return max(
                (
                    count
                    for pc, count in site_calls.items()
                    if lo <= pc < hi
                ),
                default=0,
            )

        def exec_estimate(span) -> float:
            """How many times this span ran: the larger of its hottest
            call site's count and its tick mass over its static cost."""
            if not len(span):
                return 0.0
            cost = _span_cost(exe, *addr_range(span))
            by_mass = (
                ticks(span) * cycles_per_tick / cost if cost else 0.0
            )
            return max(float(max_site(span)), by_mass)

        for br in fmap.branches:
            if br.kind == "if":
                if not len(br.otherwise):
                    continue  # no else-arm: nothing to reorder
                evidence = (
                    ticks(br.then) + ticks(br.otherwise) >= MIN_TICK_EVIDENCE
                    or max(max_site(br.then), max_site(br.otherwise))
                    >= MIN_CALL_EVIDENCE
                )
                if not evidence:
                    continue
                then_w = exec_estimate(br.then)
                else_w = exec_estimate(br.otherwise)
                if then_w > else_w * SWAP_MARGIN:
                    fb.branch_hints[(fn.name, br.ordinal)] = SWAP
            else:  # while
                evidence = (
                    ticks(br.then) + ticks(br.cond) >= MIN_TICK_EVIDENCE
                    or max_site(br.then) >= MIN_CALL_EVIDENCE
                )
                if not evidence:
                    continue
                entries = max(fb.calls_into(fn.name), 1)
                body_cost = _span_cost(exe, *addr_range(br.then))
                cond_cost = _span_cost(exe, *addr_range(br.cond))
                per_iter = body_cost + cond_cost
                by_mass = (
                    (ticks(br.then) + ticks(br.cond))
                    * cycles_per_tick
                    / per_iter
                    if per_iter
                    else 0.0
                )
                iters = max(float(max_site(br.then)), by_mass)
                if iters >= ROTATE_MIN_AVG_ITERS * entries:
                    fb.branch_hints[(fn.name, br.ordinal)] = ROTATE


def _ticks_in(hist: Histogram, lo: int, hi: int) -> float:
    """Fractional tick mass the histogram attributes to ``[lo, hi)``.

    The inverse of §3.2's apportionment: a bucket's count is spread
    uniformly over its address range, and this sums each bucket's
    overlap with the span.
    """
    width = hist.bucket_width
    if not width or hi <= lo:
        return 0.0
    total = 0.0
    first = max(0, int((lo - hist.low_pc) // width))
    last = min(hist.num_buckets, int(-(-(hi - hist.low_pc) // width)))
    for b in range(first, last):
        if not hist.counts[b]:
            continue
        b_lo = hist.low_pc + b * width
        b_hi = b_lo + width
        overlap = min(hi, b_hi) - max(lo, b_lo)
        if overlap > 0:
            total += hist.counts[b] * overlap / width
    return total


def _span_cost(exe, lo: int, hi: int) -> int:
    """Static cycle cost of one straight-line pass over ``[lo, hi)``."""
    cost = 0
    for idx in range(lo // INSTRUCTION_SIZE, hi // INSTRUCTION_SIZE):
        if 0 <= idx < len(exe.instructions):
            ins = exe.instructions[idx]
            cost += COSTS.get(ins.op, 1)
            if ins.op is Op.WORK:
                cost += ins.operand
    return cost


# -- convenience builders ------------------------------------------------------


def feedback_from_data(
    source: "str | ast.Program",
    data: ProfileData,
    *,
    name: str = "a.out",
    cycles_per_tick: int = 100,
) -> ProfileFeedback:
    """Feedback from raw gmon data, recompiling the measured baseline.

    The gmon file's addresses refer to the *unoptimized, profiled*
    build — what ``repro-vm run prog.rl --profile`` executes — so this
    recompiles exactly that baseline (level 0, mapped, profiled) and
    maps the data against it.  A profile captured from any other build
    of the source trips the staleness checks and degrades to a no-op.
    """
    from repro.lang.parser import parse
    from repro.machine.assembler import assemble

    program = parse(source) if isinstance(source, str) else source
    asm, smap = generate_mapped(program)
    exe = assemble(asm, name=name, profile=True)
    return ProfileFeedback.from_measurement(
        program, exe, smap, data, cycles_per_tick
    )


def feedback_from_profile(profile, program: ast.Program) -> ProfileFeedback:
    """Name-level feedback from an already-analyzed Profile.

    Call counts, §4 masses, and cycles map by routine name; branch
    hints need addresses and are unavailable on this path.  A profile
    mentioning routines this program does not define is stale.
    """
    fb = ProfileFeedback()
    fb.profile = profile
    names = {fn.name for fn in program.functions}
    unknown = sorted(set(profile.propagation.routine_self) - names)
    if unknown:
        fb.stale = True
        fb.warnings.append(
            f"profile routines {', '.join(unknown)} are not defined by "
            "this program: profile is from a different program version; "
            "feedback disabled"
        )
        return fb
    prop = profile.propagation
    fb.self_sec = dict(prop.routine_self)
    fb.total_sec = {
        name: prop.routine_self.get(name, 0.0)
        + prop.routine_child.get(name, 0.0)
        for name in set(prop.routine_self) | set(prop.routine_child)
    }
    graph = profile.graph
    for caller in graph.nodes():
        for callee, arc in graph.children(caller).items():
            fb.arc_counts[(caller, callee)] = arc.count
    for node in graph.nodes():
        count = graph.spontaneous_calls(node)
        if count:
            fb.spontaneous[node] = count
    fb.cycle_groups = [tuple(c.members) for c in profile.numbered.cycles]
    fb.total_calls = sum(fb.arc_counts.values()) + sum(
        fb.spontaneous.values()
    )
    fb.total_ticks = round(
        profile.total_seconds * _profrate_of(profile)
    )
    return fb


def _profrate_of(profile) -> int:
    """Best-effort tick rate for converting seconds back to samples."""
    from repro.core.histogram import DEFAULT_PROFRATE

    return DEFAULT_PROFRATE
