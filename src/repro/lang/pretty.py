"""A pretty-printer for Rel syntax trees.

Produces canonical, re-parseable source — useful for inspecting what
the optimizer did (``pretty(optimize(parse(src)))``) and for the
compiler's own round-trip property tests (printing then re-parsing is
a fixed point).
"""

from __future__ import annotations

from repro.lang import ast

#: Operator precedence for minimal parenthesization.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
    "+": 4, "-": 4,
    "*": 5, "/": 5, "%": 5,
}

_UNARY_PRECEDENCE = 6


def pretty(program: ast.Program) -> str:
    """Render a program as canonical Rel source."""
    parts: list[str] = []
    for name in program.globals_:
        parts.append(f"var {name};")
    for name, size in program.arrays.items():
        parts.append(f"array {name}[{size}];")
    if parts:
        parts.append("")
    for fn in program.functions:
        parts.append(_function(fn))
        parts.append("")
    return "\n".join(parts).rstrip("\n") + "\n"


def _function(fn: ast.Function) -> str:
    header = f"func {fn.name}({', '.join(fn.params)}) {{"
    body = _block(fn.body, indent=1)
    return "\n".join([header, *body, "}"])


def _block(stmts, indent: int) -> list[str]:
    pad = "    " * indent
    lines: list[str] = []
    for stmt in stmts:
        lines.extend(pad + line for line in _statement(stmt, indent))
    return lines


def _statement(stmt: ast.Stmt, indent: int) -> list[str]:
    if isinstance(stmt, ast.Assign):
        return [f"{stmt.name} = {_expr(stmt.value)};"]
    if isinstance(stmt, ast.AssignIndex):
        return [f"{stmt.array}[{_expr(stmt.index)}] = {_expr(stmt.value)};"]
    if isinstance(stmt, ast.If):
        lines = [f"if ({_expr(stmt.cond)}) {{"]
        lines.extend(
            "    " + line
            for s in stmt.then
            for line in _statement(s, indent + 1)
        )
        if stmt.otherwise:
            lines.append("} else {")
            lines.extend(
                "    " + line
                for s in stmt.otherwise
                for line in _statement(s, indent + 1)
            )
        lines.append("}")
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"while ({_expr(stmt.cond)}) {{"]
        lines.extend(
            "    " + line
            for s in stmt.body
            for line in _statement(s, indent + 1)
        )
        lines.append("}")
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return ["return;"]
        return [f"return {_expr(stmt.value)};"]
    if isinstance(stmt, ast.Print):
        return [f"print {_expr(stmt.value)};"]
    if isinstance(stmt, ast.Burn):
        return [f"burn {stmt.cycles};"]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{_expr(stmt.value)};"]
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def _expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    if isinstance(expr, ast.Num):
        # negative literals re-parse as unary minus; canonicalize
        if expr.value < 0:
            return _wrap(f"-{-expr.value}", _UNARY_PRECEDENCE, parent_prec)
        return str(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Index):
        return f"{expr.array}[{_expr(expr.index)}]"
    if isinstance(expr, ast.Unary):
        inner = _expr(expr.operand, _UNARY_PRECEDENCE)
        return _wrap(f"{expr.op}{inner}", _UNARY_PRECEDENCE, parent_prec)
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        # comparisons are non-associative in the grammar (one optional
        # comparison per level), so an equal-precedence left operand
        # needs parentheses there; arithmetic is left-associative.
        non_assoc = expr.op in ("==", "!=", "<", "<=", ">", ">=")
        left = _expr(expr.left, prec if non_assoc else prec - 1)
        right = _expr(expr.right, prec)
        return _wrap(f"{left} {expr.op} {right}", prec, parent_prec)
    if isinstance(expr, ast.Call):
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover


def _wrap(text: str, prec: int, parent_prec: int) -> str:
    return f"({text})" if prec <= parent_prec else text
