"""Abstract syntax of the Rel language.

Plain dataclasses; every node carries the source line for diagnostics.
Expressions evaluate to a single integer on the VM's operand stack;
statements leave the stack balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int
    line: int


@dataclass(frozen=True)
class Var:
    """A local or global scalar reference."""

    name: str
    line: int


@dataclass(frozen=True)
class Index:
    """A global array element, ``arr[expr]``."""

    array: str
    index: "Expr"
    line: int


@dataclass(frozen=True)
class Unary:
    """``-x`` or ``!x``."""

    op: str
    operand: "Expr"
    line: int


@dataclass(frozen=True)
class Binary:
    """Arithmetic/comparison; ``&&``/``||`` short-circuit."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int


@dataclass(frozen=True)
class Call:
    """A function call (always produces a value)."""

    name: str
    args: tuple["Expr", ...]
    line: int


Expr = Num | Var | Index | Unary | Binary | Call


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``name = expr;`` (declares the local on first use)."""

    name: str
    value: Expr
    line: int


@dataclass(frozen=True)
class AssignIndex:
    """``arr[i] = expr;``"""

    array: str
    index: Expr
    value: Expr
    line: int


@dataclass(frozen=True)
class If:
    """``if (cond) {…} else {…}`` (else optional)."""

    cond: Expr
    then: tuple["Stmt", ...]
    otherwise: tuple["Stmt", ...]
    line: int


@dataclass(frozen=True)
class While:
    """``while (cond) {…}``"""

    cond: Expr
    body: tuple["Stmt", ...]
    line: int


@dataclass(frozen=True)
class Return:
    """``return expr;`` / ``return;`` (returns 0)."""

    value: Expr | None
    line: int


@dataclass(frozen=True)
class Print:
    """``print expr;`` → the VM's OUT."""

    value: Expr
    line: int


@dataclass(frozen=True)
class Burn:
    """``burn N;`` → WORK N, the synthetic-load statement."""

    cycles: int
    line: int


@dataclass(frozen=True)
class ExprStmt:
    """An expression evaluated for effect; its value is discarded."""

    value: Expr
    line: int


Stmt = Assign | AssignIndex | If | While | Return | Print | Burn | ExprStmt


# -- top level ----------------------------------------------------------------------


@dataclass(frozen=True)
class Function:
    """``func name(params) { body }``"""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int


@dataclass
class Program:
    """A whole source file.

    Attributes:
        globals_: scalar global names, in declaration order.
        arrays: array name → size, in declaration order.
        functions: the program's routines.
    """

    globals_: list[str] = field(default_factory=list)
    arrays: dict[str, int] = field(default_factory=dict)
    functions: list[Function] = field(default_factory=list)
