"""Abstract syntax of the Rel language.

Plain dataclasses; every node carries the source line for diagnostics.
Expressions evaluate to a single integer on the VM's operand stack;
statements leave the stack balanced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int
    line: int


@dataclass(frozen=True)
class Var:
    """A local or global scalar reference."""

    name: str
    line: int


@dataclass(frozen=True)
class Index:
    """A global array element, ``arr[expr]``."""

    array: str
    index: "Expr"
    line: int


@dataclass(frozen=True)
class Unary:
    """``-x`` or ``!x``."""

    op: str
    operand: "Expr"
    line: int


@dataclass(frozen=True)
class Binary:
    """Arithmetic/comparison; ``&&``/``||`` short-circuit."""

    op: str
    left: "Expr"
    right: "Expr"
    line: int


@dataclass(frozen=True)
class Call:
    """A function call (always produces a value)."""

    name: str
    args: tuple["Expr", ...]
    line: int


Expr = Num | Var | Index | Unary | Binary | Call


# -- statements -------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``name = expr;`` (declares the local on first use)."""

    name: str
    value: Expr
    line: int


@dataclass(frozen=True)
class AssignIndex:
    """``arr[i] = expr;``"""

    array: str
    index: Expr
    value: Expr
    line: int


@dataclass(frozen=True)
class If:
    """``if (cond) {…} else {…}`` (else optional).

    ``likely`` is a profile-feedback hint, never produced by the
    parser: ``"then"`` asks the code generator to lay the then-arm
    out on the fall-through (no-jump) path.  The default lowering
    already favours the else-arm, so ``None`` doubles as "else
    likely / no data".  Hints never change observable behaviour —
    only which arm pays the join-jump.
    """

    cond: Expr
    then: tuple["Stmt", ...]
    otherwise: tuple["Stmt", ...]
    line: int
    likely: str | None = None


@dataclass(frozen=True)
class While:
    """``while (cond) {…}``

    ``rotate`` is a profile-feedback hint, never produced by the
    parser: when the measured mean trip count is high enough, the
    code generator emits the bottom-tested (rotated) form that pays
    one jump per *entry* instead of one per *iteration*.  Semantics
    are identical either way.
    """

    cond: Expr
    body: tuple["Stmt", ...]
    line: int
    rotate: bool = False


@dataclass(frozen=True)
class Return:
    """``return expr;`` / ``return;`` (returns 0)."""

    value: Expr | None
    line: int


@dataclass(frozen=True)
class Print:
    """``print expr;`` → the VM's OUT."""

    value: Expr
    line: int


@dataclass(frozen=True)
class Burn:
    """``burn N;`` → WORK N, the synthetic-load statement."""

    cycles: int
    line: int


@dataclass(frozen=True)
class ExprStmt:
    """An expression evaluated for effect; its value is discarded."""

    value: Expr
    line: int


Stmt = Assign | AssignIndex | If | While | Return | Print | Burn | ExprStmt


# -- top level ----------------------------------------------------------------------


@dataclass(frozen=True)
class Function:
    """``func name(params) { body }``"""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int


@dataclass
class Program:
    """A whole source file.

    Attributes:
        globals_: scalar global names, in declaration order.
        arrays: array name → size, in declaration order.
        functions: the program's routines.  Code is emitted in list
            order; the hot/cold layout pass may permute this list (and
            nothing else — see DESIGN.md on why layout is only ever a
            permutation).
    """

    globals_: list[str] = field(default_factory=list)
    arrays: dict[str, int] = field(default_factory=dict)
    functions: list[Function] = field(default_factory=list)


def iter_branch_nodes(stmts) -> "list[If | While]":
    """Every ``If``/``While`` under ``stmts`` in canonical pre-order.

    This is the *branch numbering* contract shared by the code
    generator's source map and the branch-ordering pass: statement
    order, recursing into an ``If``'s then-arm before its else-arm.
    The ordinal of a branch is its position in this walk, which
    depends only on tree *structure* — two structurally identical
    trees number their branches identically, and a hint that swaps
    emitted arm order does not disturb the numbering.
    """
    out: list[If | While] = []

    def walk(body) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                out.append(stmt)
                walk(stmt.then)
                walk(stmt.otherwise)
            elif isinstance(stmt, While):
                out.append(stmt)
                walk(stmt.body)

    walk(stmts)
    return out
