"""Frozen flow reports: canned programs -> dataflow summary text.

Same contract as :mod:`tests.pipeline_golden`: the dataflow battery is
deterministic by construction (sorted successor visits, address-ordered
rendering), so each program's :func:`repro.check.flow.render_flow_report`
text is frozen under ``tests/golden/`` and replayed byte-for-byte.

Regenerating the fixtures is a conscious act::

    PYTHONPATH=src python -m tests.flow_golden

(only legitimate after a deliberate, reviewed format change).
"""

from __future__ import annotations

from pathlib import Path

from repro.check.flow import analyze_flow, render_flow_report
from repro.machine import assemble
from repro.machine.programs import PROGRAMS

#: Where the frozen reports live.
GOLDEN_DIR = Path(__file__).parent / "golden"

#: The programs frozen: a recursion-heavy one, a CALLI fan-out, and a
#: nested-loop data mover.
FLOW_PROGRAMS = ("fib", "dispatch", "insertion_sort")


def compute_flow_report(name: str) -> str:
    """One program's flow report text (fresh analysis)."""
    exe = assemble(PROGRAMS[name](), name=name, profile=True)
    return render_flow_report(analyze_flow(exe))


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"flow_{name}.txt"


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in FLOW_PROGRAMS:
        golden_path(name).write_text(
            compute_flow_report(name), encoding="utf-8"
        )
        print(f"froze {golden_path(name)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
