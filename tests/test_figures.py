"""Reproduction of Figures 1-3: topological numbering and cycle collapse.

Figure 1 shows a topological numbering of an acyclic call graph with the
property stated in §4: "The topological numbering ensures that all edges
in the graph go from higher numbered nodes to lower numbered nodes."
Figure 2 makes two of the nodes mutually recursive, and Figure 3 shows
the numbering after the cycle is collapsed.  The printed figures are
images we cannot quote, so these tests verify the *stated properties*
on a ten-node graph of the same shape and size.
"""

from repro.core.cycles import (
    condensation_arcs,
    number_graph,
    paper_numbering,
    verify_topological,
)

from tests.helpers import graph_from_edges

#: A ten-node acyclic call graph standing in for Figure 1.
FIG1_EDGES = [
    ("n1", "n2"), ("n1", "n3"),
    ("n2", "n4"), ("n2", "n5"),
    ("n3", "n6"), ("n3", "n7"),
    ("n4", "n8"), ("n6", "n8"),
    ("n7", "n9"), ("n7", "n10"),
    ("n5", "n9"),
]

#: Figure 2: the same graph with nodes 3 and 7 mutually recursive.
FIG2_EDGES = FIG1_EDGES + [("n7", "n3")]


class TestFigure1:
    def test_every_edge_descends(self):
        numbered = number_graph(graph_from_edges(*FIG1_EDGES))
        verify_topological(numbered)
        num = paper_numbering(numbered)
        for src, dst in FIG1_EDGES:
            assert num[src] > num[dst], (src, dst)

    def test_numbers_are_a_permutation(self):
        numbered = number_graph(graph_from_edges(*FIG1_EDGES))
        nums = sorted(numbered.topo_number.values())
        assert nums == list(range(1, 11))

    def test_root_gets_highest_number_leaves_lowest(self):
        numbered = number_graph(graph_from_edges(*FIG1_EDGES))
        num = numbered.topo_number
        assert num["n1"] == 10
        # Every leaf is numbered below every internal node it's called by.
        for leaf in ("n8", "n9", "n10"):
            assert num[leaf] < num["n1"]

    def test_no_cycles_in_figure_1(self):
        numbered = number_graph(graph_from_edges(*FIG1_EDGES))
        assert numbered.cycles == []


class TestFigures2And3:
    def test_nodes_3_and_7_collapse(self):
        numbered = number_graph(graph_from_edges(*FIG2_EDGES))
        assert len(numbered.cycles) == 1
        assert set(numbered.cycles[0].members) == {"n3", "n7"}

    def test_collapsed_graph_has_nine_nodes(self):
        # Figure 3: ten nodes minus a two-member cycle plus its
        # representative = nine numbered positions.
        numbered = number_graph(graph_from_edges(*FIG2_EDGES))
        assert len(numbered.topo_order) == 9
        assert sorted(numbered.topo_number.values()) == list(range(1, 10))

    def test_collapsed_numbering_still_descends(self):
        numbered = number_graph(graph_from_edges(*FIG2_EDGES))
        verify_topological(numbered)
        num = numbered.topo_number
        rep = numbered.representative
        for src, dst in FIG2_EDGES:
            if rep[src] == rep[dst]:
                continue  # the collapsed intra-cycle arc
            assert num[rep[src]] > num[rep[dst]], (src, dst)

    def test_cycle_inherits_parents_and_children_of_members(self):
        # §4: "children of one member of a cycle must be considered
        # children of all members of the cycle.  Similarly, parents of
        # one member of the cycle must inherit all members of the cycle
        # as descendants."  After collapsing, the cycle node has n1 as
        # parent and the children of both n3 and n7.
        numbered = number_graph(graph_from_edges(*FIG2_EDGES))
        cyc = numbered.cycles[0].name
        arcs = condensation_arcs(numbered)
        parents = {src for (src, dst) in arcs if dst == cyc}
        children = {dst for (src, dst) in arcs if src == cyc}
        assert parents == {"n1"}
        assert children == {"n6", "n9", "n10"}
