"""Property suite: every kernel backend is observationally identical.

The tentpole claim of :mod:`repro.core.kernels` is not "close enough"
— it is that swapping backends can never change a single output byte.
These tests generate adversarial inputs (random layouts, non-power-of-
two bucket widths, empty histograms, zero-arc files, counts at the
u32 ceiling) and assert three levels of identity:

1. **wire bytes**: merging a fleet through :class:`ProfileAccumulator`
   on any backend and re-serializing yields byte-identical ``gmon``
   output, equal to the legacy ``merge_profiles`` path;
2. **listings**: the flat and call-graph listings of a full analysis
   are character-identical across backends;
3. **apportionment semantics**: the span-compressed evaluator agrees
   with the historical per-bucket formula to ≤1e-9 relative — the one
   place the kernels deliberately reassociate a float sum (see
   ``repro/core/kernels/spans.py`` for why bit-identity *across
   backends* still holds exactly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AnalysisOptions,
    Histogram,
    ProfileData,
    RawArc,
    Symbol,
    SymbolTable,
    analyze,
    merge_profiles,
)
from repro.core import kernels
from repro.core.kernels.spans import build_spans
from repro.fleet import ProfileAccumulator
from repro.gmon import dumps_gmon
from repro.report import format_flat_profile, format_graph_profile

BACKENDS = kernels.available_backends()

U32 = 0xFFFFFFFF

# -- strategies --------------------------------------------------------------

#: Histogram layouts, deliberately including non-power-of-two bucket
#: widths (width 3, 7, 13...) and the degenerate zero-bucket layout.
layouts = st.tuples(
    st.integers(min_value=0, max_value=1 << 16),          # low_pc
    st.integers(min_value=0, max_value=24),               # nbuckets
    st.integers(min_value=1, max_value=19),               # bucket width
    st.sampled_from([60, 100, 1000]),                     # profrate
)


@st.composite
def fleets(draw):
    """A same-layout fleet of 1-4 wire profiles (bytes), plus metadata.

    Counts are scaled so the merged sums stay within the wire's u32
    ceiling, but single-profile fleets can carry counts at exactly
    ``0xFFFFFFFF``.
    """
    low, nbuckets, width, profrate = draw(layouts)
    high = low + nbuckets * width
    k = draw(st.integers(min_value=1, max_value=4))
    ceiling = U32 // k
    blobs = []
    for _ in range(k):
        counts = draw(
            st.lists(
                st.one_of(
                    st.integers(min_value=0, max_value=64),
                    st.integers(min_value=ceiling - 3, max_value=ceiling),
                ),
                min_size=nbuckets,
                max_size=nbuckets,
            )
        )
        arcs = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=1 << 40),
                    st.integers(min_value=0, max_value=1 << 40),
                    st.integers(min_value=0, max_value=ceiling),
                ),
                max_size=6,
                # unique call sites per profile: condensing duplicates
                # could push a merged count past the wire's u32 ceiling
                unique_by=lambda t: (t[0], t[1]),
            )
        )
        data = ProfileData(
            Histogram(low, high, counts, profrate),
            [RawArc(f, s, c) for f, s, c in arcs],
            runs=draw(st.integers(min_value=1, max_value=3)),
        )
        blobs.append(dumps_gmon(data))
    return blobs


@st.composite
def images(draw):
    """A random symbol table + a sampled profile over it.

    Symbol sizes are arbitrary (not bucket-aligned), the histogram
    scale varies, so bucket/symbol overlap produces plenty of
    fractional-weight edges.
    """
    nsyms = draw(st.integers(min_value=1, max_value=6))
    sizes = draw(
        st.lists(
            st.integers(min_value=3, max_value=90),
            min_size=nsyms,
            max_size=nsyms,
        )
    )
    addr = draw(st.integers(min_value=0, max_value=1000))
    syms = []
    for i, size in enumerate(sizes):
        syms.append(Symbol(addr, f"f{i}", addr + size))
        addr += size
    symbols = SymbolTable(syms)
    scale = draw(st.sampled_from([1.0, 0.5, 0.375, 0.21, 0.07]))
    hist = Histogram.for_range(symbols.low_pc, symbols.high_pc, scale, 100)
    nticks = draw(st.integers(min_value=0, max_value=24))
    for _ in range(nticks):
        pc = draw(
            st.integers(min_value=symbols.low_pc, max_value=symbols.high_pc - 1)
        )
        hist.record(pc)
    arcs = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        caller = syms[draw(st.integers(0, nsyms - 1))]
        callee = syms[draw(st.integers(0, nsyms - 1))]
        count = draw(st.integers(min_value=1, max_value=50))
        arcs.append(RawArc(caller.address + 1, callee.address, count))
    return symbols, ProfileData(hist, arcs, runs=1)


# -- level 1: wire bytes -----------------------------------------------------


@given(fleets())
@settings(deadline=None, max_examples=60)
def test_merged_gmon_bytes_identical_across_backends(blobs):
    outputs = {}
    for name in BACKENDS:
        acc = ProfileAccumulator(name)
        for blob in blobs:
            acc.add(blob)
        outputs[name] = dumps_gmon(acc.result())
    reference = outputs["python"]
    for name, out in outputs.items():
        assert out == reference, f"backend {name} diverged on the wire"
    # and the legacy pairwise-merge path agrees too
    from repro.gmon import parse_gmon

    legacy = merge_profiles([parse_gmon(b) for b in blobs])
    assert dumps_gmon(legacy) == reference


def test_empty_histogram_and_zero_arc_files_round_trip():
    """The degenerate shapes: no buckets, no arcs, still byte-equal."""
    empty_hist = dumps_gmon(ProfileData(Histogram(64, 64, [], 100), [], runs=1))
    zero_arcs = dumps_gmon(
        ProfileData(Histogram(0, 8, [U32, 0], 60), [], runs=2)
    )
    half = dumps_gmon(
        ProfileData(Histogram(0, 8, [U32 // 2, 7], 60), [], runs=1)
    )
    for blobs in ([empty_hist, empty_hist], [zero_arcs], [half, half]):
        outs = set()
        for name in BACKENDS:
            acc = ProfileAccumulator(name)
            for b in blobs:
                acc.add(b)
            outs.add(dumps_gmon(acc.result()))
        assert len(outs) == 1


# -- level 2: listings -------------------------------------------------------


@given(images())
@settings(deadline=None, max_examples=40)
def test_listings_identical_across_backends(image):
    symbols, data = image
    listings = {}
    for name in BACKENDS:
        kernels.set_default_backend(name)
        try:
            profile = analyze(data, symbols, AnalysisOptions())
            listings[name] = (
                format_flat_profile(profile),
                format_graph_profile(profile),
            )
        finally:
            kernels.set_default_backend(None)
    reference = listings["python"]
    for name, out in listings.items():
        assert out == reference, f"backend {name} changed a listing"


# -- level 3: apportionment vs the historical formula ------------------------


def historical_assign(hist: Histogram, symbols: SymbolTable):
    """The pre-kernels per-bucket loop, transcribed for comparison."""
    times: dict[str, float] = {}
    if not hist.counts:
        return times
    width = hist.bucket_width
    sec = hist.seconds_per_tick
    for sym in symbols:
        if sym.end <= hist.low_pc or sym.address >= hist.high_pc:
            continue
        first = max(int((sym.address - hist.low_pc) / width) - 1, 0)
        last = min(
            int((sym.end - hist.low_pc) / width) + 1, hist.num_buckets - 1
        )
        acc = 0.0
        for idx in range(first, last + 1):
            b_lo = hist.low_pc + idx * width
            overlap = min(b_lo + width, sym.end) - max(b_lo, sym.address)
            if overlap > 0:
                acc += hist.counts[idx] * (overlap / width)
        if acc:
            times[sym.name] = acc * sec
    return times


@given(images())
@settings(deadline=None, max_examples=60)
def test_span_evaluation_matches_historical_formula(image):
    symbols, data = image
    hist = data.histogram
    expected = historical_assign(hist, symbols)
    spans = build_spans(
        hist.low_pc, hist.high_pc, hist.num_buckets, symbols
    )
    for name in BACKENDS:
        got = kernels.get_backend(name).apportion(
            spans, hist.counts, hist.seconds_per_tick
        )
        assert got.keys() == expected.keys()
        for routine, want in expected.items():
            assert got[routine] == pytest.approx(want, rel=1e-9), (
                name,
                routine,
            )


@given(images())
@settings(deadline=None, max_examples=40)
def test_histogram_time_for_symbols_uses_selected_backend(image):
    """The public entry point agrees bitwise across backends."""
    symbols, data = image
    hist = data.histogram
    results = set()
    for name in BACKENDS:
        kernels.set_default_backend(name)
        try:
            results.add(tuple(sorted(hist.time_for_symbols(symbols).items())))
        finally:
            kernels.set_default_backend(None)
    assert len(results) == 1
