"""Tests for the simulated kernel and the kgmon interface."""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.errors import KernelError
from repro.kernel import (
    CYCLE_CLOSING_ARCS,
    Kgmon,
    KernelSession,
    NETWORK_CYCLE,
    build_kernel_source,
)


@pytest.fixture(scope="module")
def finished_session():
    session = KernelSession(iterations=300)
    session.run_to_completion()
    return session


class TestKernelProgram:
    def test_kernel_terminates(self, finished_session):
        assert finished_session.halted

    def test_build_validates_knobs(self):
        with pytest.raises(ValueError):
            build_kernel_source(loopback_every=1)
        with pytest.raises(ValueError):
            build_kernel_source(iterations=0)

    def test_network_stack_forms_one_big_cycle(self, finished_session):
        data = Kgmon(finished_session).extract()
        profile = analyze(data, finished_session.symbol_table())
        assert len(profile.numbered.cycles) == 1
        assert set(profile.numbered.cycles[0].members) == set(NETWORK_CYCLE)

    def test_closing_arcs_have_low_counts(self, finished_session):
        # "there were just a few arcs -- with low traversal counts --
        # that closed the cycles."
        data = Kgmon(finished_session).extract()
        profile = analyze(data, finished_session.symbol_table())
        graph = profile.graph
        closing = [graph.arc(a, b).count for a, b in CYCLE_CLOSING_ARCS]
        pipeline = graph.arc("ip_output", "if_output").count
        assert all(c < pipeline / 3 for c in closing)

    def test_removing_closing_arcs_unfuses_subsystems(self, finished_session):
        data = Kgmon(finished_session).extract()
        profile = analyze(
            data,
            finished_session.symbol_table(),
            AnalysisOptions(deleted_arcs=CYCLE_CLOSING_ARCS),
        )
        assert profile.numbered.cycles == []
        # With the stack unfused, each layer inherits its downstream.
        tcp_out = profile.entry("tcp_output")
        assert tcp_out.child_seconds > 0

    def test_heuristic_finds_the_closing_arcs(self, finished_session):
        data = Kgmon(finished_session).extract()
        profile = analyze(
            data,
            finished_session.symbol_table(),
            AnalysisOptions(auto_break_cycles=True, max_removed_arcs=4),
        )
        assert profile.numbered.cycles == []
        removed = {(r.caller, r.callee) for r in profile.removed_arcs}
        assert removed <= set(CYCLE_CLOSING_ARCS) | {("tcp_output", "ip_output")}
        assert len(removed) <= 2

    def test_device_interrupts_are_spontaneous(self, finished_session):
        # Device interrupts dispatch irq_device with no call site; its
        # profile entry must show a <spontaneous> parent and charge its
        # time to nobody (§3.1's anomalous invocations).
        data = Kgmon(finished_session).extract()
        profile = analyze(data, finished_session.symbol_table())
        entry = profile.entry("irq_device")
        assert entry.ncalls == finished_session.cpu.interrupts_delivered > 0
        assert entry.parents[0].name is None
        # but its *own* children are attributed normally
        assert {c.name for c in entry.children} == {"intr_ack"}

    def test_interrupts_can_be_disabled(self):
        session = KernelSession(iterations=50, device_interrupts=False)
        session.run_to_completion()
        assert session.cpu.interrupts_delivered == 0

    def test_scheduler_and_fs_not_in_cycle(self, finished_session):
        data = Kgmon(finished_session).extract()
        profile = analyze(data, finished_session.symbol_table())
        members = set(profile.numbered.cycles[0].members)
        for name in ("schedule", "fs_lookup", "disk_read", "hardclock"):
            assert name not in members


class TestKgmonControl:
    def test_off_gathers_nothing_kernel_still_runs(self):
        session = KernelSession(iterations=50)
        kgmon = Kgmon(session)
        kgmon.off()
        session.run_slice(5000)
        status = kgmon.status()
        assert status.kernel_cycles > 0
        assert status.ticks == 0
        assert status.calls == 0

    def test_on_off_window_captures_only_window(self):
        session = KernelSession(iterations=200)
        kgmon = Kgmon(session)
        kgmon.off()
        session.run_slice(4000)
        kgmon.on()
        session.run_slice(4000)
        kgmon.off()
        mid = kgmon.status()
        session.run_to_completion()
        after = kgmon.status()
        assert after.ticks == mid.ticks  # nothing gathered after 'off'
        assert mid.ticks > 0

    def test_extract_does_not_disturb_gathering(self):
        session = KernelSession(iterations=200)
        kgmon = Kgmon(session)
        session.run_slice(4000)
        first = kgmon.extract("w1")
        session.run_to_completion()
        second = kgmon.extract("w2")
        assert second.total_ticks >= first.total_ticks
        assert first.comment == "w1"

    def test_reset_starts_fresh_window(self):
        session = KernelSession(iterations=300)
        kgmon = Kgmon(session)
        session.run_slice(5000)
        before = kgmon.extract("before")
        kgmon.reset()
        assert kgmon.status().ticks == 0
        session.run_to_completion()
        window = kgmon.extract("after")
        total = before.total_ticks + window.total_ticks
        # Windows partition the run's samples.  (A tolerance of a couple
        # of ticks is faithful: resetting mid-run reorders the arc
        # table's hash chains for spontaneous call sites, shifting the
        # monitoring routine's cycle cost slightly — enough to move a
        # tick boundary.)
        unsliced = KernelSession(iterations=300)
        unsliced.run_to_completion()
        whole = Kgmon(unsliced).extract()
        assert abs(total - whole.total_ticks) <= 2
        assert before.total_calls + window.total_calls == whole.total_calls

    def test_extract_before_running_rejected(self):
        session = KernelSession(iterations=10)
        with pytest.raises(KernelError):
            Kgmon(session).extract()

    def test_windows_are_analyzable_separately(self):
        # The kernel-profiling workflow: profile an activity window and
        # analyze it offline while the system keeps running.
        session = KernelSession(iterations=400)
        kgmon = Kgmon(session)
        session.run_slice(8000)
        kgmon.reset()  # discard warm-up
        session.run_slice(8000)
        window = kgmon.extract("steady state")
        profile = analyze(window, session.symbol_table())
        assert profile.total_seconds > 0
        assert not session.halted  # the "system" never went down


class TestProfVsGprofOnKernel:
    def test_prof_cannot_separate_but_gprof_can(self, finished_session):
        from repro.baseline import prof_analyze

        data = Kgmon(finished_session).extract()
        symbols = finished_session.symbol_table()
        rows = prof_analyze(data, symbols)
        # prof: syscall shows tiny self time despite causing most work.
        syscall_row = next(r for r in rows if r.name == "syscall")
        assert syscall_row.percent < 15.0
        # gprof: syscall's entry shows the inherited cost.
        profile = analyze(data, symbols)
        entry = profile.entry("syscall")
        assert entry.percent > 30.0
        assert entry.child_seconds > entry.self_seconds
