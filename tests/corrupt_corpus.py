"""Build and verify a corrupt-gmon corpus from the canned programs.

Run as a module::

    PYTHONPATH=src python -m tests.corrupt_corpus --out corpus/ --flips 500
    PYTHONPATH=src python -m tests.corrupt_corpus --flips 500 --verify

For every canned VM program the generator runs a real profiled
execution, serializes the resulting profile, and then mutates the
bytes two ways:

* **every** single-byte truncation (optionally strided down with
  ``--stride`` for quick local runs), and
* ``--flips`` seeded random single-bit flips per program.

``--out DIR`` writes each mutant to disk (``NAME.trunc<k>.gmon`` /
``NAME.flip<off>.<bit>.gmon``) so external tools can chew on the
corpus; without it the mutants stay in memory.  ``--verify`` asserts
the resilience contract over the whole corpus:

* strict parsing raises :class:`GmonFormatError` and nothing else;
* salvage *never* raises, and never reports a truncated file clean.

The CI fault-injection job runs this with ``--verify`` over all
programs; :mod:`tests.test_corrupt_corpus` smoke-tests a small slice.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import GmonFormatError
from repro.gmon import dumps_gmon, parse_gmon, salvage_gmon_bytes
from repro.machine import CPU, Monitor, MonitorConfig, assemble
from repro.machine.programs import PROGRAMS
from repro.resilience import all_truncations, random_bit_flips

DEFAULT_FLIPS = 500


def valid_blob(name: str, cycles_per_tick: int = 40) -> bytes:
    """Profile one canned program for real and serialize the result."""
    exe = assemble(PROGRAMS[name](), name=name, profile=True)
    monitor = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=cycles_per_tick)
    )
    CPU(exe, monitor).run()
    return dumps_gmon(monitor.mcleanup(comment=name))


def mutants(blob: bytes, flips: int, stride: int = 1, seed: int = 0):
    """Yield ``(tag, is_truncation, mutated_bytes)`` for one blob."""
    for cut, mutated in all_truncations(blob):
        if cut % stride == 0:
            yield f"trunc{cut}", True, mutated
    for offset, bit, mutated in random_bit_flips(blob, flips, seed=seed):
        yield f"flip{offset}.{bit}", False, mutated


def check_mutant(tag: str, truncated: bool, mutated: bytes) -> str | None:
    """Verify one mutant; return an error description or None."""
    try:
        parse_gmon(mutated)
        strict_ok = True
    except GmonFormatError:
        strict_ok = False
    except Exception as exc:  # noqa: BLE001 - the whole point of the gate
        return f"{tag}: strict raised {type(exc).__name__}: {exc}"
    try:
        _, report = salvage_gmon_bytes(mutated, source=tag)
    except Exception as exc:  # noqa: BLE001
        return f"{tag}: salvage raised {type(exc).__name__}: {exc}"
    if truncated and report.clean:
        return f"{tag}: truncated file reported clean (silent lie)"
    if not strict_ok and report.clean:
        return f"{tag}: strict rejected it but salvage reported clean"
    return None


def run(programs, flips: int, stride: int, out: str | None,
        verify: bool, log=print) -> int:
    """Generate (and optionally write / verify) the corpus.

    Returns the number of contract violations found (0 == pass).
    """
    if out:
        os.makedirs(out, exist_ok=True)
    total = 0
    failures: list[str] = []
    for name in programs:
        blob = valid_blob(name)
        count = 0
        for tag, truncated, mutated in mutants(blob, flips, stride):
            count += 1
            if out:
                with open(os.path.join(out, f"{name}.{tag}.gmon"), "wb") as f:
                    f.write(mutated)
            if verify:
                problem = check_mutant(f"{name}.{tag}", truncated, mutated)
                if problem:
                    failures.append(problem)
        log(f"{name}: {len(blob)} bytes -> {count} mutants")
        total += count
    log(f"corpus: {total} mutants across {len(list(programs))} programs")
    for problem in failures:
        log(f"FAIL {problem}")
    if verify and not failures:
        log("verify: strict raises only GmonFormatError; salvage never raises")
    return len(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="corrupt_corpus", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--out", help="write mutant files into this directory")
    parser.add_argument("--flips", type=int, default=DEFAULT_FLIPS,
                        help="random bit flips per program "
                             f"(default {DEFAULT_FLIPS})")
    parser.add_argument("--stride", type=int, default=1,
                        help="keep every Nth truncation (default: all)")
    parser.add_argument("--programs", nargs="*",
                        help="canned programs to mutate (default: all)")
    parser.add_argument("--verify", action="store_true",
                        help="assert the strict/salvage contract per mutant")
    opts = parser.parse_args(argv)
    programs = opts.programs or sorted(PROGRAMS)
    unknown = [p for p in programs if p not in PROGRAMS]
    if unknown:
        print(f"unknown programs: {', '.join(unknown)}", file=sys.stderr)
        return 2
    failures = run(programs, opts.flips, opts.stride, opts.out, opts.verify)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
