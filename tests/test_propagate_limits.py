"""Demonstrations of the paper's documented pitfalls (kept on purpose).

DESIGN.md §5 lists the semantics the reproduction *preserves* because
the paper documents them as limitations; each test here demonstrates
one, so a change that silently "fixes" them (and diverges from gprof)
fails loudly.
"""

import pytest

from repro.core import analyze
from repro.core.arcs import Arc
from repro.core.callgraph import CallGraph
from repro.core.cycles import number_graph
from repro.core.propagate import propagate
from repro.machine import assemble, run_profiled
from repro.machine.programs import skewed

from tests.helpers import make_symbols, profile_data


class TestAverageTimeAssumption:
    """§3.2: "We make the simplifying assumption that all calls to a
    specific routine require the same amount of time to execute.  This
    assumption may disguise that some calls ... always invoke a routine
    such that its execution is faster (or slower) than the average."""

    def test_per_call_skew_is_invisible(self):
        src = skewed(cheap_calls=99, dear_calls=1, dear_work=99)
        cpu, data = run_profiled(src, name="skewed")
        profile = analyze(data, assemble(src, profile=True).symbol_table())
        work = profile.entry("work_n")
        flat = next(f for f in profile.flat_entries if f.name == "work_n")
        # one ms/call figure is reported, though real calls differ ~99x.
        assert flat.self_ms_per_call is not None
        shares = {
            p.name: p.self_share + p.child_share for p in work.parents
        }
        # ...and attribution follows call counts, not true cost.
        assert shares["cheap_caller"] > 50 * shares["dear_caller"]


class TestPerArcAttribution:
    """§4: callers receive C^r_e/C_e of a callee's time — single arcs,
    not call stacks, so context beyond one level is averaged away."""

    def test_grandparent_context_is_lost(self):
        # ctx_a always reaches leaf through mid with expensive requests,
        # ctx_b with cheap ones; gprof cannot tell — mid's inherited
        # time is split between ctx_a and ctx_b by call count (1:1).
        g = CallGraph(
            [
                Arc("ctx_a", "mid", 5),
                Arc("ctx_b", "mid", 5),
                Arc("mid", "leaf", 10),
            ]
        )
        prop = propagate(number_graph(g), {"leaf": 10.0, "mid": 2.0})
        a = prop.arc_shares[("ctx_a", "mid")]
        b = prop.arc_shares[("ctx_b", "mid")]
        assert a.total == pytest.approx(b.total)  # context-blind, by design


class TestCycleOpacity:
    """§6: "it is impossible to distinguish which members of the cycle
    are responsible for the execution time" — intra-cycle arcs carry
    no time, and the whole cycle shares one total."""

    def test_members_share_one_total(self):
        symbols = make_symbols("m", "a", "b")
        data = profile_data(
            symbols,
            [("m", "a", 4), ("a", "b", 9), ("b", "a", 9)],
            ticks={"a": 30, "b": 90},
        )
        profile = analyze(data, symbols)
        cyc = profile.entry("<cycle 1>")
        # the entry for m shows the whole cycle's time through its arc,
        # regardless of which member actually burned it.
        m_child = profile.entry("m").children[0]
        assert m_child.self_share == pytest.approx(cyc.self_seconds)
        # intra-cycle arcs propagated nothing.
        assert ("a", "b") not in profile.propagation.arc_shares
        assert ("b", "a") not in profile.propagation.arc_shares

    def test_members_keep_their_histogram_self_time_only(self):
        symbols = make_symbols("m", "a", "b")
        data = profile_data(
            symbols,
            [("m", "a", 4), ("a", "b", 9), ("b", "a", 9)],
            ticks={"a": 30, "b": 90},
        )
        profile = analyze(data, symbols)
        assert profile.entry("a").self_seconds == pytest.approx(0.5)
        assert profile.entry("b").self_seconds == pytest.approx(1.5)
        # but neither member entry inherits the other's time
        assert profile.entry("a").child_seconds == pytest.approx(0.0)
        assert profile.entry("b").child_seconds == pytest.approx(0.0)


class TestSpontaneousResidue:
    """§3.1: unknown callers keep their share of the callee's time —
    it is attributed to nobody rather than guessed."""

    def test_unattributed_time_stays_put(self):
        symbols = make_symbols("caller", "handler")
        data = profile_data(
            symbols,
            [("caller", "handler", 3), ("<spontaneous>", "handler", 1)],
            ticks={"handler": 40},
        )
        profile = analyze(data, symbols)
        caller = profile.entry("caller")
        # 3 of 4 calls identified: caller receives 3/4 of the time.
        assert caller.child_seconds == pytest.approx(0.5)
        # the remaining quarter is visible on handler but on no parent.
        handler = profile.entry("handler")
        attributed = sum(
            p.self_share + p.child_share for p in handler.parents
        )
        assert attributed == pytest.approx(0.5)
        assert handler.self_seconds == pytest.approx(40 / 60)
