"""Differential tests: the fast interpreter is observably identical to
the reference interpreter.

The fast engine (predecode + threaded dispatch + batched clocks) is
only admissible because nothing can tell it apart from the reference
``if``/``elif`` interpreter: same cycle clock, same histogram buckets,
same arc counts and mcount statistics, byte-identical ``gmon.out``,
same error messages at the same machine states.  This suite pins that
over the whole canned corpus, targeted edge cases (interrupt delivery,
mid-WORK tick crossings, mid-run kgmon control), and
hypothesis-generated random programs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_executable
from repro.errors import MachineError
from repro.gmon import dumps_gmon
from repro.machine import CPU, ENGINES, FastCPU, Monitor, MonitorConfig, assemble, make_cpu
from repro.machine.cpu import InterruptSource
from repro.machine.fastcpu import OP_DEFER, OP_OFFEND, predecode
from repro.machine.programs import PROGRAMS


def machine_state(cpu):
    """Every observable of a finished (or faulted) machine."""
    return {
        "pc": cpu.pc,
        "cycles": cpu.cycles,
        "instructions": cpu.instructions_executed,
        "stack": list(cpu.stack),
        "frames": [
            (f.return_addr, list(f.locals), f.interrupted)
            for f in cpu.frames
        ],
        "globals": list(cpu.globals),
        "counters": list(cpu.counters),
        "output": list(cpu.output),
        "halted": cpu.halted,
        "irqs": cpu.interrupts_delivered,
    }


def monitor_state(mon):
    """Every observable of the profiling data and its statistics."""
    if mon is None:
        return None
    return {
        "hist": list(mon.histogram.counts),
        "arcs": mon.arc_table.arcs(),
        "lookups": mon.stats.lookups,
        "probes": mon.stats.probes,
        "collisions": mon.stats.collisions,
        "spontaneous": mon.stats.spontaneous,
        "dropped": mon.ticks_dropped,
        "gmon": dumps_gmon(mon.snapshot()),
    }


def run_both(
    source,
    profile=True,
    cycles_per_tick=100,
    scale=1.0,
    interrupts=(),
    max_instructions=None,
    max_cycles=None,
):
    """Run ``source`` on both engines; return per-engine observations."""
    results = {}
    for engine in ENGINES:
        exe = assemble(source, profile=profile)
        mon = Monitor(
            MonitorConfig(
                exe.low_pc,
                exe.high_pc,
                scale=scale,
                cycles_per_tick=cycles_per_tick,
            )
        )
        irqs = [InterruptSource(*spec) for spec in interrupts]
        cpu = make_cpu(exe, mon, interrupts=irqs, engine=engine)
        error = None
        try:
            cpu.run(max_instructions=max_instructions, max_cycles=max_cycles)
        except MachineError as exc:
            error = str(exc)
        results[engine] = (machine_state(cpu), monitor_state(mon), error)
    return results


def assert_identical(results):
    assert results["fast"] == results["reference"]


# --------------------------------------------------------------------------
# The canned corpus, across profiling geometries.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_canned_corpus_identical(name):
    source = PROGRAMS[name]()
    for profile in (True, False):
        for cycles_per_tick in (1, 7, 100):
            assert_identical(
                run_both(source, profile=profile, cycles_per_tick=cycles_per_tick)
            )


@pytest.mark.parametrize("name", ["fib", "dispatch", "codegen"])
def test_canned_corpus_identical_coarse_scale(name):
    """A non-unit scale exercises the shift/mask bucket cache."""
    assert_identical(run_both(PROGRAMS[name](), scale=0.5))
    assert_identical(run_both(PROGRAMS[name](), scale=0.3))


# --------------------------------------------------------------------------
# Interrupts, budgets, and mid-WORK tick crossings.
# --------------------------------------------------------------------------

IRQ_PROGRAM = """
.func main
    PUSH 150
    STORE 0
loop:
    WORK 13
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func isr
    WORK 3
    RET
.end
"""


@pytest.mark.parametrize("period,phase", [(37, None), (100, 0), (250, 5), (53, 1)])
def test_interrupt_delivery_identical(period, phase):
    assert_identical(
        run_both(IRQ_PROGRAM, interrupts=[("isr", period, phase)])
    )


def test_two_interrupt_sources_identical():
    assert_identical(
        run_both(
            IRQ_PROGRAM,
            cycles_per_tick=50,
            interrupts=[("isr", 37, None), ("isr", 53, 10)],
        )
    )


def test_interrupt_storm_identical():
    """Deliveries due every cycle: the machine livelocks in the handler
    by design; both engines must livelock identically under a budget."""
    assert_identical(
        run_both(
            IRQ_PROGRAM,
            interrupts=[("isr", 1, 0)],
            max_instructions=2500,
        )
    )


def test_mid_work_tick_crossing_identical():
    """WORK operands straddling tick boundaries in every phase."""
    lines = ["PUSH 0", "POP"]
    for w in (1, 7, 99, 100, 101, 250, 0):
        lines.append(f"WORK {w}")
    body = "\n ".join(lines)
    source = f".func main\n {body}\n HALT\n.end\n"
    for cycles_per_tick in (1, 3, 100):
        assert_identical(run_both(source, cycles_per_tick=cycles_per_tick))


@pytest.mark.parametrize("max_instructions", [0, 1, 17, 500])
def test_instruction_budget_identical(max_instructions):
    assert_identical(
        run_both(PROGRAMS["fib"](8), max_instructions=max_instructions)
    )


@pytest.mark.parametrize("max_cycles", [0, 1, 100, 777, 5000])
def test_cycle_budget_identical(max_cycles):
    assert_identical(run_both(PROGRAMS["fib"](8), max_cycles=max_cycles))


def test_budget_resume_identical():
    """Slice-wise execution (the kgmon pattern) converges identically."""
    states = {}
    for engine in ENGINES:
        exe = assemble(PROGRAMS["codegen"](), profile=True)
        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10))
        cpu = make_cpu(exe, mon, engine=engine)
        slices = 0
        while not cpu.halted:
            cpu.run(max_instructions=97)
            slices += 1
        states[engine] = (machine_state(cpu), monitor_state(mon), slices)
    assert states["fast"] == states["reference"]


def test_moncontrol_and_reset_mid_run_identical():
    """kgmon-style control between slices: off/on and reset must leave
    both engines with the same profile (the mcount fast path must not
    serve stale chain heads across a reset)."""
    states = {}
    for engine in ENGINES:
        exe = assemble(PROGRAMS["dispatch"](60), profile=True)
        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10))
        cpu = make_cpu(exe, mon, engine=engine)
        cpu.run(max_instructions=400)
        mon.moncontrol(False)
        cpu.run(max_instructions=400)
        mon.moncontrol(True)
        mon.reset()
        cpu.run()
        states[engine] = (machine_state(cpu), monitor_state(mon))
    assert states["fast"] == states["reference"]


# --------------------------------------------------------------------------
# Faulting programs: same error text, same final machine state.
# --------------------------------------------------------------------------

FAULTS = [
    ".func main\n PUSH 1\n PUSH 0\n DIV\n HALT\n.end\n",
    ".func main\n PUSH 1\n PUSH 0\n MOD\n HALT\n.end\n",
    ".func main\n POP\n HALT\n.end\n",
    ".func main\n PUSH 1\n ADD\n HALT\n.end\n",
    ".func main\n GLOAD 3\n HALT\n.end\n",
    ".globals 2\n.func main\n PUSH 5\n PUSH 9\n GSTOREI\n HALT\n.end\n",
    ".func main\n PUSH 3\n CALLI\n HALT\n.end\n",
    ".func main\n PUSH 4000\n CALLI\n HALT\n.end\n",
    ".func main\n WORK -5\n HALT\n.end\n",
    ".func main\n NOP\n NOP\n NOP\n.end\n",  # falls off the text segment
    ".func main\n CALL main\n HALT\n.end\n",  # frame overflow
]


@pytest.mark.parametrize("source", FAULTS)
def test_faults_identical(source):
    for profile in (True, False):
        for cycles_per_tick in (1, 100):
            results = run_both(
                source, profile=profile, cycles_per_tick=cycles_per_tick
            )
            assert results["fast"][2] is not None  # the fault fired
            assert_identical(results)


# --------------------------------------------------------------------------
# Predecode mechanics.
# --------------------------------------------------------------------------


def test_predecode_cached_on_executable():
    exe = assemble(PROGRAMS["fib"]())
    pre = predecode(exe)
    assert predecode(exe) is pre
    assert exe.predecoded() is pre
    assert pre.length == len(exe.instructions)
    # sentinel guards the fall-off-the-end address
    assert pre.ops[-1] == OP_OFFEND


def test_predecode_invalidated_by_rebinding_text():
    exe = assemble(PROGRAMS["fib"]())
    pre = predecode(exe)
    exe.instructions = list(exe.instructions)
    assert predecode(exe) is not pre


def test_predecode_defers_unsafe_operands():
    from repro.machine.executable import Executable, Function
    from repro.machine.isa import Instruction, Op

    exe = Executable(
        name="weird",
        instructions=[
            Instruction(Op.JMP, 6),        # misaligned target
            Instruction(Op.JZ, -4),        # negative target
            Instruction(Op.CALL, 4000),    # out-of-range target
            Instruction(Op.LOAD, -1),      # negative local slot
            Instruction(Op.WORK, -2),      # negative WORK operand
            Instruction(Op.WORK, None),    # missing operand
            Instruction(Op.JMP, 0),        # valid: resolved to an index
            Instruction(Op.HALT),
        ],
        functions=[Function("main", 0, 32)],
    )
    pre = predecode(exe)
    assert pre.ops[:6] == [OP_DEFER] * 6
    assert pre.ops[6] != OP_DEFER
    assert pre.args[6] == 0  # address 0 -> instruction index 0


def test_deferred_negative_local_slot_matches_reference():
    from repro.machine.executable import Executable, Function
    from repro.machine.isa import Instruction, Op

    def build():
        return Executable(
            name="neg",
            instructions=[Instruction(Op.LOAD, -3), Instruction(Op.HALT)],
            functions=[Function("main", 0, 8)],
        )

    errors = {}
    for engine, cls in ENGINES.items():
        cpu = cls(build())
        with pytest.raises(MachineError) as exc:
            cpu.run()
        errors[engine] = (str(exc.value), machine_state(cpu))
    assert errors["fast"] == errors["reference"]
    assert "negative local slot" in errors["fast"][0]


def test_fast_engine_registry():
    assert ENGINES["fast"] is FastCPU
    assert ENGINES["reference"] is CPU
    with pytest.raises(MachineError):
        make_cpu(assemble(PROGRAMS["fib"]()), engine="warp")


def test_tracer_falls_back_to_reference_semantics():
    """A tracer must observe reference-exact call/return sequences."""

    class Recorder:
        def __init__(self):
            self.events = []

        def on_call(self, cpu, target):
            self.events.append(("call", target, cpu.cycles))

        def on_return(self, cpu):
            self.events.append(("ret", cpu.pc, cpu.cycles))

    events = {}
    for engine in ENGINES:
        exe = assemble(PROGRAMS["even_odd"](12), profile=True)
        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10))
        cpu = make_cpu(exe, mon, engine=engine)
        cpu.tracer = Recorder()
        cpu.run()
        events[engine] = (cpu.tracer.events, machine_state(cpu), monitor_state(mon))
    assert events["fast"] == events["reference"]


# --------------------------------------------------------------------------
# Stack sampling (VMStackMonitor) rides the careful path.
# --------------------------------------------------------------------------


def test_stack_monitor_identical():
    from repro.stacks.vm import VMStackMonitor

    states = {}
    for engine in ENGINES:
        exe = assemble(PROGRAMS["deep"](), profile=False)
        mon = VMStackMonitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=25),
            stride=2,
        )
        cpu = make_cpu(exe, mon, engine=engine)
        mon.bind(cpu)
        cpu.run()
        states[engine] = (
            machine_state(cpu),
            monitor_state(mon),
            dict(mon.stack_profile.samples),
            mon.stack_walk_cycles,
        )
    assert states["fast"] == states["reference"]


# --------------------------------------------------------------------------
# repro-check is engine-agnostic: predecode leaves lint results alone.
# --------------------------------------------------------------------------


def test_check_passes_ignore_predecode_cache():
    """GP2xx lint passes see the same program before and after the fast
    engine has predecoded (and run) it."""
    source = PROGRAMS["netcycle"]()
    exe = assemble(source, profile=True)
    before = check_executable(exe)
    # run on the fast engine: attaches the predecode cache to the image
    mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc))
    FastCPU(exe, mon).run()
    assert getattr(exe, "_predecoded", None) is not None
    after = check_executable(exe)
    assert after.diagnostics == before.diagnostics
    # and an untouched reference-engine image lints identically
    fresh = assemble(source, profile=True)
    assert check_executable(fresh).diagnostics == before.diagnostics


# --------------------------------------------------------------------------
# Hypothesis: random structured programs, random profiling geometry.
# --------------------------------------------------------------------------


@st.composite
def structured_programs(draw):
    """A terminating multi-function program with calls, loops, indirect
    dispatch, arithmetic, and WORK — the constructs whose interaction
    with ticks and events the fast engine restructures."""
    n_funcs = draw(st.integers(2, 5))
    names = [f"fn{i}" for i in range(n_funcs)]
    funcs = []
    for i in range(n_funcs):
        body = []
        loop_count = draw(st.integers(1, 6))
        body += [f"PUSH {loop_count}", "STORE 0", "loop:"]
        for _ in range(draw(st.integers(1, 4))):
            kind = draw(
                st.sampled_from(["work", "arith", "call", "calli", "global"])
            )
            if kind == "work":
                body.append(f"WORK {draw(st.integers(0, 120))}")
            elif kind == "arith":
                body += [
                    f"PUSH {draw(st.integers(-50, 50))}",
                    f"PUSH {draw(st.integers(1, 50))}",
                    draw(st.sampled_from(["ADD", "SUB", "MUL", "DIV", "MOD"])),
                    "POP",
                ]
            elif kind == "call" and i + 1 < n_funcs:
                body.append(f"CALL {draw(st.sampled_from(names[i + 1:]))}")
            elif kind == "calli" and i + 1 < n_funcs:
                body.append(f"PUSH &{draw(st.sampled_from(names[i + 1:]))}")
                body.append("CALLI")
            else:
                body += [f"PUSH {draw(st.integers(-9, 9))}", "GSTORE 0", "GLOAD 0", "POP"]
        body += ["LOAD 0", "PUSH 1", "SUB", "STORE 0", "LOAD 0", "JNZ loop"]
        if i == 0:
            body.append("GLOAD 0")
            body.append("OUT")
            body.append("HALT")
        else:
            body.append("RET")
        funcs.append(
            f".func {'main' if i == 0 else names[i]}\n "
            + "\n ".join(body)
            + "\n.end\n"
        )
    return ".globals 1\n" + "".join(funcs)


@settings(max_examples=60, deadline=None)
@given(
    structured_programs(),
    st.booleans(),
    st.sampled_from([1, 3, 7, 100]),
    st.sampled_from([1.0, 0.5]),
)
def test_random_programs_identical(source, profile, cycles_per_tick, scale):
    assert_identical(
        run_both(
            source,
            profile=profile,
            cycles_per_tick=cycles_per_tick,
            scale=scale,
            max_instructions=30_000,
        )
    )


@settings(max_examples=30, deadline=None)
@given(
    structured_programs(),
    st.integers(11, 400),
    st.sampled_from([None, 0, 3]),
)
def test_random_programs_with_interrupts_identical(source, period, phase):
    source = source + "\n.func hyp_isr\n WORK 2\n RET\n.end\n"
    assert_identical(
        run_both(
            source,
            cycles_per_tick=10,
            interrupts=[("hyp_isr", period, phase)],
            max_instructions=30_000,
        )
    )
