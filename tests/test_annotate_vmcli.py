"""Tests for annotated disassembly and the repro-vm CLI."""

import pytest

from repro.cli.vm_cli import main as vm_main
from repro.core.histogram import Histogram
from repro.machine import assemble, run_profiled
from repro.machine.programs import compute_heavy
from repro.report.annotate import (
    format_annotated_disassembly,
    hottest_instructions,
)


@pytest.fixture()
def profiled_run():
    src = compute_heavy(calls=10, work=500)
    cpu, data = run_profiled(src, name="crunchy")
    exe = assemble(src, name="crunchy", profile=True)
    return exe, data


class TestTicksInRange:
    def test_exact_with_unit_buckets(self):
        h = Histogram.for_range(0, 8, scale=1.0)
        h.record(2)
        h.record(2)
        h.record(5)
        assert h.ticks_in_range(0, 4) == pytest.approx(2.0)
        assert h.ticks_in_range(4, 8) == pytest.approx(1.0)
        assert h.ticks_in_range(0, 8) == pytest.approx(3.0)

    def test_fractional_with_coarse_buckets(self):
        h = Histogram(0, 8, [4])  # one bucket over 8 addresses
        assert h.ticks_in_range(0, 4) == pytest.approx(2.0)
        assert h.ticks_in_range(2, 4) == pytest.approx(1.0)

    def test_empty_range(self):
        h = Histogram.for_range(0, 8)
        assert h.ticks_in_range(5, 5) == 0.0
        assert h.ticks_in_range(6, 2) == 0.0

    def test_range_sums_partition_total(self):
        h = Histogram.for_range(0, 100, scale=0.3)
        for pc in range(0, 100, 3):
            h.record(pc)
        parts = sum(
            h.ticks_in_range(lo, lo + 10) for lo in range(0, 100, 10)
        )
        assert parts == pytest.approx(h.total_ticks)


class TestAnnotatedDisassembly:
    def test_work_instruction_is_hottest(self, profiled_run):
        exe, data = profiled_run
        rows = hottest_instructions(exe, data.histogram, top=3)
        addr, routine, text, ticks = rows[0]
        assert routine == "crunch"
        assert text.startswith("WORK")
        assert ticks > 0

    def test_listing_contains_functions_and_bars(self, profiled_run):
        exe, data = profiled_run
        text = format_annotated_disassembly(exe, data.histogram)
        assert "crunch:" in text
        assert "main:" in text
        assert "|#" in text  # at least one bar
        assert "WORK 500" in text

    def test_min_function_ticks_filter(self, profiled_run):
        exe, data = profiled_run
        text = format_annotated_disassembly(
            exe, data.histogram, min_function_ticks=data.total_ticks / 2
        )
        assert "crunch:" in text
        assert "main:" not in text

    def test_function_ticks_sum_to_program(self, profiled_run):
        exe, data = profiled_run
        total = sum(
            data.histogram.ticks_in_range(f.entry, f.end)
            for f in exe.functions
        )
        assert total == pytest.approx(data.total_ticks)


class TestVmCli:
    def test_list(self, capsys):
        assert vm_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fib" in out
        assert "netcycle" in out

    def test_asm_then_run_image(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "prog.s"
        src.write_text(".func main\n PUSH 7\n OUT\n HALT\n.end\n")
        assert vm_main(["asm", str(src), "-o", "prog.vmexe", "--profile"]) == 0
        assert vm_main(["run", "prog.vmexe", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "output [7]" in out
        assert (tmp_path / "gmon.out").exists()

    def test_run_canned_program_with_annotation(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert vm_main(
            ["run", "compute_heavy", "--profile", "--annotate",
             "--gmon", "ch.gmon"]
        ) == 0
        out = capsys.readouterr().out
        assert "annotated disassembly" in out
        assert "crunch:" in out
        assert (tmp_path / "ch.gmon").exists()

    def test_run_source_file_directly(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "p.s"
        src.write_text(".func main\n PUSH 1\n OUT\n HALT\n.end\n")
        assert vm_main(["run", str(src)]) == 0
        assert "output [1]" in capsys.readouterr().out

    def test_run_unprofiled_image_with_profile_errors(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "p.s"
        src.write_text(".func main\n HALT\n.end\n")
        vm_main(["asm", str(src), "-o", "plain.vmexe"])
        capsys.readouterr()
        assert vm_main(["run", "plain.vmexe", "--profile"]) == 1
        assert "re-assemble" in capsys.readouterr().err

    def test_unknown_program(self, capsys):
        assert vm_main(["run", "no_such_thing"]) == 1
        assert "neither" in capsys.readouterr().err

    def test_count_flag(self, capsys):
        assert vm_main(["run", "fib", "--count"]) == 0
        out = capsys.readouterr().out
        assert "block execution counts:" in out
        assert "fib.recurse" in out

    def test_count_flag_on_plain_image(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "p.s"
        src.write_text(".func main\n HALT\n.end\n")
        vm_main(["asm", str(src), "-o", "p.vmexe"])
        capsys.readouterr()
        assert vm_main(["run", "p.vmexe", "--count"]) == 1
        assert "no block counters" in capsys.readouterr().err

    def test_cli_output_feeds_gprof(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        src = tmp_path / "p.s"
        src.write_text(
            ".func main\n CALL f\n HALT\n.end\n"
            ".func f\n WORK 200\n RET\n.end\n"
        )
        vm_main(["asm", str(src), "-o", "p.vmexe", "--profile"])
        vm_main(["run", "p.vmexe", "--profile", "--gmon", "p.gmon",
                 "--ticks", "10"])
        capsys.readouterr()
        from repro.cli.gprof_cli import main as gprof_main

        assert gprof_main(["p.vmexe", "p.gmon"]) == 0
        assert "f [" in capsys.readouterr().out
