"""Live-extraction chaos: kgmon can fire at any moment and lose nothing.

The kernel requirement — "extract the profiling data, and reset the
data" without taking the system down — becomes a conservation law on
the SMP machine: however extraction and reset interleave with the
schedule, the union of everything extracted plus whatever remains in
the shards must merge to byte-for-byte the profile of an uninterrupted
run.  This holds by construction (resets clear shard *data* in place;
a process's private mcount cost table is never touched, so virtual
time cannot fork), and this suite sweeps the construction: an
extract/reset at **every** scheduling-round boundary, at one boundary
at a time, several extractions without reset, and the global-lock
layout — all against the same oracle bytes.
"""

import pytest

from repro.gmon import dumps_gmon
from repro.machine import assemble
from repro.machine.programs import PROGRAMS
from repro.machine.smp import SMPMachine, reduce_shards

NAME = "dispatch"
NPROCS = 3


def build_machine(sharding="percpu", ncpus=4):
    exe = assemble(PROGRAMS[NAME](), name=NAME, profile=True)
    return SMPMachine(
        exe,
        ncpus=ncpus,
        nprocs=NPROCS,
        policy="random",
        seed=1,
        quantum=300,
        cycles_per_tick=25,
        sharding=sharding,
    )


def merge_bytes(parts):
    return dumps_gmon(reduce_shards(parts, comment=NAME, runs=NPROCS))


@pytest.fixture(scope="module")
def oracle():
    """The uninterrupted run: its merged bytes and its round count."""
    machine = build_machine()
    machine.run()
    return merge_bytes(machine.extract()), machine.rounds


def test_extract_reset_every_round(oracle):
    """The harshest schedule: a kgmon extract+reset between every
    single pair of scheduling rounds."""
    oracle_bytes, _ = oracle
    machine = build_machine()
    collected = []
    while machine.step_round():
        collected.extend(machine.extract(comment="round", reset=True))
    residual = machine.extract()
    assert machine.halted
    assert merge_bytes(collected + residual) == oracle_bytes
    # everything was swept out of the shards by the final reset cycle
    assert machine.total_ticks() == 0 or residual


@pytest.mark.parametrize("boundary", [1, 2, 5, 9])
def test_extract_reset_at_one_boundary(oracle, boundary):
    """One extraction mid-run, at several depths."""
    oracle_bytes, rounds = oracle
    assert boundary < rounds  # the sweep stays inside the run
    machine = build_machine()
    machine.run(max_rounds=boundary)
    window = machine.extract(comment="window", reset=True)
    machine.run()
    assert merge_bytes(window + machine.extract()) == oracle_bytes


def test_every_boundary_exhaustively(oracle):
    """All of them: for k in 1..rounds-1, extract+reset after round k."""
    oracle_bytes, rounds = oracle
    for k in range(1, rounds):
        machine = build_machine()
        machine.run(max_rounds=k)
        window = machine.extract(reset=True)
        machine.run()
        assert merge_bytes(window + machine.extract()) == oracle_bytes, (
            f"extraction after round {k} lost or duplicated events"
        )


def test_extract_without_reset_is_a_pure_read(oracle):
    """Snapshots without reset never perturb the final profile."""
    oracle_bytes, _ = oracle
    machine = build_machine()
    while machine.step_round():
        machine.extract(comment="peek")  # no reset: a pure observation
    assert merge_bytes(machine.extract()) == oracle_bytes
    assert all(s.extractions > 0 for s in machine.shards)


def test_double_reset_extracts_empty(oracle):
    """A reset immediately after a reset extracts nothing — and still
    conserves the total."""
    oracle_bytes, _ = oracle
    machine = build_machine()
    machine.run(max_rounds=4)
    first = machine.extract(reset=True)
    second = machine.extract(reset=True)
    assert all(p.total_ticks == 0 and not p.arcs for p in second)
    machine.run()
    assert merge_bytes(first + second + machine.extract()) == oracle_bytes


def test_chaos_on_global_lock_layout(oracle):
    """The strawman layout obeys the same conservation law."""
    oracle_bytes, _ = oracle
    machine = build_machine(sharding="global-lock")
    collected = []
    while machine.step_round():
        if machine.rounds % 2 == 0:
            collected.extend(machine.extract(reset=True))
    assert merge_bytes(collected + machine.extract()) == oracle_bytes


def test_chaos_across_cpu_counts(oracle):
    """Conservation and schedule-independence compose: sweeping every
    boundary on a differently-sized machine still yields the oracle."""
    oracle_bytes, _ = oracle
    for ncpus in (1, 2, 8):
        machine = build_machine(ncpus=ncpus)
        collected = []
        while machine.step_round():
            collected.extend(machine.extract(reset=True))
        assert merge_bytes(collected + machine.extract()) == oracle_bytes
