"""Tests for static call graph extraction from executables (§4)."""

from repro.machine import assemble, static_call_graph
from repro.machine.isa import Instruction, Op
from repro.machine.programs import abstraction, dispatch


class TestDirectCalls:
    def test_every_call_instruction_found(self):
        src = """
.func main
    CALL a
    CALL b
    HALT
.end
.func a
    CALL b
    RET
.end
.func b
    RET
.end
"""
        exe = assemble(src)
        assert static_call_graph(exe) == {
            ("main", "a"),
            ("main", "b"),
            ("a", "b"),
        }

    def test_untraversed_branch_still_found(self):
        # §6: "the static call information is particularly useful here
        # since the test case you run probably will not exercise the
        # entire program."
        src = """
.func main
    PUSH 0
    JZ skip
    CALL never
skip:
    HALT
.end
.func never
    RET
.end
"""
        exe = assemble(src)
        assert ("main", "never") in static_call_graph(exe)

    def test_profiled_build_same_graph(self):
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        plain = static_call_graph(assemble(src, profile=False))
        prof = static_call_graph(assemble(src, profile=True))
        assert plain == prof == {("main", "f")}


class TestAddressTaken:
    def test_push_of_function_address_is_potential_arc(self):
        exe = assemble(dispatch())
        graph = static_call_graph(exe)
        for handler in ("handler_a", "handler_b", "handler_c"):
            assert ("main", handler) in graph

    def test_plain_constants_not_arcs(self):
        # PUSH 4 would alias function f's entry only if 4 were an entry;
        # here f starts at 4, so guard that mid-body constants do not
        # count while genuine entries only count as PUSH &f.
        src = """
.func main
    PUSH 3
    POP
    HALT
.end
.func f
    RET
.end
"""
        exe = assemble(src)
        # 3 is misaligned, so no arc.
        assert static_call_graph(exe) == set()

    def test_indirect_target_not_inferred_from_calli(self):
        # CALLI itself carries no target; only the PUSH is evidence.
        src = """
.func main
    PUSH &f
    CALLI
    HALT
.end
.func f
    RET
.end
"""
        exe = assemble(src)
        assert static_call_graph(exe) == {("main", "f")}


class TestHeuristicEdgeCases:
    # main occupies [0, 12); f occupies [12, 20) when unprofiled.
    MID_BODY = """
.func main
    PUSH {value}
    POP
    HALT
.end
.func f
    WORK 1
    RET
.end
"""

    def test_aligned_mid_body_constant_is_not_an_arc(self):
        # 16 is instruction-aligned and inside f's body, but it is not
        # f's entry, so the address-taken heuristic must skip it.
        exe = assemble(self.MID_BODY.format(value=16))
        assert exe.function_named("f").entry == 12
        assert static_call_graph(exe) == set()

    def test_aligned_entry_constant_is_an_arc(self):
        # The documented over-approximation: a constant that happens to
        # equal an entry address reads as address-taken.
        exe = assemble(self.MID_BODY.format(value=12))
        assert static_call_graph(exe) == {("main", "f")}

    def test_aligned_out_of_text_constant_is_not_an_arc(self):
        exe = assemble(self.MID_BODY.format(value=400))
        assert static_call_graph(exe) == set()

    def test_operandless_push_is_skipped(self):
        exe = assemble(self.MID_BODY.format(value=12))
        exe.instructions[0] = Instruction(Op.PUSH, None)
        assert static_call_graph(exe) == set()

    def test_operandless_call_is_skipped(self):
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe = assemble(src)
        exe.instructions[0] = Instruction(Op.CALL, None)
        assert static_call_graph(exe) == set()


class TestAgainstPrograms:
    def test_abstraction_program_static_graph(self):
        exe = assemble(abstraction())
        graph = static_call_graph(exe)
        assert ("calc1", "format1") in graph
        assert ("calc2", "format2") in graph
        assert ("format1", "write") in graph
        assert ("format2", "write") in graph
        assert ("calc1", "format2") not in graph
