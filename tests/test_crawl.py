"""Tests for static call graph extraction from executables (§4)."""

from repro.machine import assemble, static_call_graph
from repro.machine.programs import abstraction, dispatch


class TestDirectCalls:
    def test_every_call_instruction_found(self):
        src = """
.func main
    CALL a
    CALL b
    HALT
.end
.func a
    CALL b
    RET
.end
.func b
    RET
.end
"""
        exe = assemble(src)
        assert static_call_graph(exe) == {
            ("main", "a"),
            ("main", "b"),
            ("a", "b"),
        }

    def test_untraversed_branch_still_found(self):
        # §6: "the static call information is particularly useful here
        # since the test case you run probably will not exercise the
        # entire program."
        src = """
.func main
    PUSH 0
    JZ skip
    CALL never
skip:
    HALT
.end
.func never
    RET
.end
"""
        exe = assemble(src)
        assert ("main", "never") in static_call_graph(exe)

    def test_profiled_build_same_graph(self):
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        plain = static_call_graph(assemble(src, profile=False))
        prof = static_call_graph(assemble(src, profile=True))
        assert plain == prof == {("main", "f")}


class TestAddressTaken:
    def test_push_of_function_address_is_potential_arc(self):
        exe = assemble(dispatch())
        graph = static_call_graph(exe)
        for handler in ("handler_a", "handler_b", "handler_c"):
            assert ("main", handler) in graph

    def test_plain_constants_not_arcs(self):
        # PUSH 4 would alias function f's entry only if 4 were an entry;
        # here f starts at 4, so guard that mid-body constants do not
        # count while genuine entries only count as PUSH &f.
        src = """
.func main
    PUSH 3
    POP
    HALT
.end
.func f
    RET
.end
"""
        exe = assemble(src)
        # 3 is misaligned, so no arc.
        assert static_call_graph(exe) == set()

    def test_indirect_target_not_inferred_from_calli(self):
        # CALLI itself carries no target; only the PUSH is evidence.
        src = """
.func main
    PUSH &f
    CALLI
    HALT
.end
.func f
    RET
.end
"""
        exe = assemble(src)
        assert static_call_graph(exe) == {("main", "f")}


class TestAgainstPrograms:
    def test_abstraction_program_static_graph(self):
        exe = assemble(abstraction())
        graph = static_call_graph(exe)
        assert ("calc1", "format1") in graph
        assert ("calc2", "format2") in graph
        assert ("format1", "write") in graph
        assert ("format2", "write") in graph
        assert ("calc1", "format2") not in graph
