"""Behavioural tests for the canned program library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine import CPU, assemble, run_unprofiled
from repro.machine.programs import (
    even_odd,
    fib,
    hanoi,
    insertion_sort,
    netcycle,
    skewed,
)


class TestIndexedGlobals:
    def test_gloadi_gstorei(self):
        src = """
.globals 3
.func main
    PUSH 42
    PUSH 2
    GSTOREI
    PUSH 2
    GLOADI
    OUT
    HALT
.end
"""
        cpu = CPU(assemble(src))
        cpu.run()
        assert cpu.output == [42]
        assert cpu.globals == [0, 0, 42]

    def test_negative_index_faults(self):
        src = ".globals 2\n.func main\n PUSH -1\n GLOADI\n HALT\n.end\n"
        with pytest.raises(MachineError, match="out of range"):
            CPU(assemble(src)).run()

    def test_index_past_end_faults(self):
        src = ".globals 2\n.func main\n PUSH 1\n PUSH 2\n GSTOREI\n HALT\n.end\n"
        with pytest.raises(MachineError, match="out of range"):
            CPU(assemble(src)).run()


class TestHanoi:
    @pytest.mark.parametrize("disks", [1, 4, 9])
    def test_move_count_is_mersenne(self, disks):
        cpu = run_unprofiled(hanoi(disks))
        assert cpu.output == [2**disks - 1]


class TestInsertionSort:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 30), st.integers(1, 10_000))
    def test_sorts_any_seed(self, n, seed):
        cpu = run_unprofiled(insertion_sort(n=n, seed=seed))
        assert cpu.globals == sorted(cpu.globals)
        assert cpu.output[0] == min(cpu.globals)
        assert cpu.output[1] == sum(cpu.globals)


class TestOracles:
    @pytest.mark.parametrize("n, expected", [(0, 0), (1, 1), (10, 55), (15, 610)])
    def test_fib_values(self, n, expected):
        assert run_unprofiled(fib(n)).output == [expected]

    @pytest.mark.parametrize("n, expected", [(0, 1), (7, 0), (8, 1)])
    def test_even_odd_values(self, n, expected):
        assert run_unprofiled(even_odd(n)).output == [expected]

    def test_netcycle_emits_nothing_but_terminates(self):
        cpu = run_unprofiled(netcycle(packets=20))
        assert cpu.halted

    def test_skewed_work_scales_with_argument(self):
        a = run_unprofiled(skewed(cheap_calls=10, dear_calls=1, dear_work=1))
        b = run_unprofiled(skewed(cheap_calls=10, dear_calls=1, dear_work=50))
        assert b.cycles > a.cycles
