"""Tests for inline basic-block counters (§2/§3 statement counting)."""

import pytest

from repro.errors import AssemblerError
from repro.machine import (
    CPU,
    Executable,
    Op,
    assemble,
    block_counts,
    format_block_counts,
)
from repro.machine.programs import even_odd, fib


def run_counted(src, **kw):
    cpu = CPU(assemble(src, count_blocks=True, **kw))
    cpu.run()
    return cpu


class TestPlanting:
    def test_entry_and_labels_get_counters(self):
        src = """
.func main
    PUSH 3
    STORE 0
loop:
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end
"""
        exe = assemble(src, count_blocks=True)
        assert exe.counter_names == ["main.entry", "main.loop"]
        counts = [i for i in exe.instructions if i.op is Op.COUNT]
        assert len(counts) == 2

    def test_labels_still_resolve_through_counters(self):
        # the loop label must point at its COUNT so back-edges hit it
        cpu = run_counted(
            ".func main\n PUSH 3\n STORE 0\n"
            "loop:\n LOAD 0\n PUSH 1\n SUB\n STORE 0\n LOAD 0\n JNZ loop\n"
            " HALT\n.end\n"
        )
        counts = {c.name: c.count for c in block_counts(cpu)}
        assert counts["main.loop"] == 3

    def test_handwritten_count_rejected(self):
        with pytest.raises(AssemblerError, match="COUNT"):
            assemble(".func main\n COUNT 0\n HALT\n.end\n")

    def test_plain_build_has_no_counters(self):
        exe = assemble(fib(5))
        assert exe.counter_names == []
        assert all(i.op is not Op.COUNT for i in exe.instructions)

    def test_combines_with_profiling(self):
        exe = assemble(fib(5), profile=True, count_blocks=True)
        assert exe.instructions[0].op is Op.MCOUNT
        assert exe.instructions[1].op is Op.COUNT


class TestCounts:
    def test_fib_counts_match_theory(self):
        cpu = run_counted(fib(10))
        counts = {c.name: c.count for c in block_counts(cpu)}
        assert counts["fib.entry"] == 177  # 2*F(11) - 1
        assert counts["fib.recurse"] == 177 - 89  # internal nodes
        assert cpu.output == [55]

    def test_even_odd_counts(self):
        cpu = run_counted(even_odd(9))
        counts = {c.name: c.count for c in block_counts(cpu)}
        assert counts["even.entry"] == 5
        assert counts["odd.entry"] == 5

    def test_untaken_branch_counts_zero(self):
        cpu = run_counted(
            ".func main\n PUSH 1\n JNZ skip\n WORK 5\n"
            "skip:\n HALT\n.end\n"
        )
        counts = {c.name: c.count for c in block_counts(cpu)}
        assert counts["main.skip"] == 1
        assert counts["main.entry"] == 1

    def test_format_lists_never_executed(self):
        cpu = run_counted(
            ".func main\n PUSH 0\n JNZ ghost\n HALT\nghost:\n HALT\n.end\n"
        )
        text = format_block_counts(cpu)
        assert "never executed" in text
        assert "main.ghost" in text
        brief = format_block_counts(cpu, zero_blocks=False)
        assert "main.ghost" not in brief

    def test_image_roundtrip_keeps_counters(self):
        exe = assemble(fib(5), count_blocks=True)
        again = Executable.from_dict(exe.to_dict())
        assert again.counter_names == exe.counter_names
        a, b = CPU(exe), CPU(again)
        a.run()
        b.run()
        assert a.counters == b.counters
