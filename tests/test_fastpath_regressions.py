"""Regression tests for the fast-path micro-optimizations.

Two of the hot-path rewrites have observable semantics worth pinning
independently of the engine-equivalence suite:

* ``_trunc_div`` grew a same-sign ``//`` fast path — truncation toward
  zero (C semantics) on negative operands must survive it.
* ``Monitor.tick`` caches the histogram bucket computation as a shift
  when the geometry allows — bucket assignment must match
  :meth:`Histogram.bucket_for` on every address, including the last
  bucket's edges, and gracefully fall back when the geometry doesn't
  tile in powers of two.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import Histogram
from repro.machine.cpu import _trunc_div
from repro.machine.monitor import Monitor, MonitorConfig, _fast_bucket_params


# --------------------------------------------------------------------------
# _trunc_div: truncation toward zero, both fast and corrected paths.
# --------------------------------------------------------------------------


@pytest.mark.parametrize(
    "a,b,q",
    [
        # same-sign: the new `a // b` fast path
        (17, 5, 3),
        (-17, -5, 3),
        (15, 5, 3),
        (-15, -5, 3),
        (0, 7, 0),
        (0, -7, 0),
        # mixed-sign: truncation toward zero, NOT floor
        (-17, 5, -3),
        (17, -5, -3),
        (-15, 5, -3),
        (15, -5, -3),
        (-1, 2, 0),
        (1, -2, 0),
    ],
)
def test_trunc_div_truncates_toward_zero(a, b, q):
    assert _trunc_div(a, b) == q


@given(st.integers(-10**12, 10**12), st.integers(-10**6, 10**6).filter(bool))
def test_trunc_div_matches_c_semantics(a, b):
    q = _trunc_div(a, b)
    r = a - q * b
    # C99: (a/b)*b + a%b == a, |r| < |b|, and r has the dividend's sign
    assert q * b + r == a
    assert abs(r) < abs(b)
    assert r == 0 or (r > 0) == (a > 0)
    # and the quotient is the float quotient truncated toward zero
    assert q == int(a / b) or abs(a) >= 2**52  # int(a/b) is exact below 2^52


def test_mod_on_negatives_through_the_vm():
    """C-style MOD survives the fast path end to end."""
    from repro.machine import FastCPU, assemble

    src = ".func main\n PUSH -17\n PUSH 5\n MOD\n OUT\n HALT\n.end\n"
    cpu = FastCPU(assemble(src))
    cpu.run()
    assert cpu.output == [-2]  # not +3, which floor-mod would give


# --------------------------------------------------------------------------
# Monitor.tick bucket cache.
# --------------------------------------------------------------------------


def reference_counts(histogram_args, pcs):
    hist = Histogram(*histogram_args)
    for pc in pcs:
        hist.record(pc)
    return list(hist.counts), hist


@pytest.mark.parametrize("scale", [1.0, 0.5, 0.25])
def test_fast_bucket_matches_bucket_for_everywhere(scale):
    low, high = 64, 64 + 512
    mon = Monitor(MonitorConfig(low, high, scale=scale))
    assert mon._fast_bucket is not None  # power-of-two geometry
    ref = Histogram.for_range(low, high, scale, mon.config.profrate)
    # every address in range, plus both out-of-range sides
    for pc in range(low - 8, high + 8):
        mon.tick(pc)
        ref.record(pc)
    assert mon.histogram.counts == ref.counts
    # the last bucket's final address landed in the last bucket
    assert ref.bucket_for(high - 1) == len(ref.counts) - 1
    assert mon.histogram.counts[-1] > 0
    # out-of-range ticks were dropped, not clamped into end buckets
    assert mon.ticks_dropped == 16


def test_fast_bucket_last_edge_never_clamps():
    """With an exactly-tiling power-of-two width, the shift never
    produces an index needing bucket_for's last-bucket clamp."""
    mon = Monitor(MonitorConfig(0, 1024, scale=0.25))
    low, high, shift, counts = mon._fast_bucket
    assert (high - low) >> shift == len(counts)
    for pc in range(low, high):
        assert (pc - low) >> shift <= len(counts) - 1


def test_non_power_of_two_geometry_falls_back():
    """scale = 1/3 gives a bucket width the shift cannot express; the
    monitor must fall back to the reference computation and still agree
    with bucket_for."""
    low, high = 0, 300
    mon = Monitor(MonitorConfig(low, high, scale=1 / 3))
    assert mon._fast_bucket is None
    ref = Histogram.for_range(low, high, 1 / 3, mon.config.profrate)
    for pc in range(low, high):
        mon.tick(pc)
        ref.record(pc)
    assert mon.histogram.counts == ref.counts


def test_fast_bucket_params_rejects_bad_geometries():
    def hist(low, high, nbuckets):
        return Histogram(low, high, [0] * nbuckets)

    assert _fast_bucket_params(hist(0, 256, 64)) is not None  # width 4
    assert _fast_bucket_params(hist(0, 256, 85)) is None  # doesn't tile
    assert _fast_bucket_params(hist(0, 192, 16)) is None  # width 12
    assert _fast_bucket_params(hist(0, 0, 0)) is None  # empty range


def test_moncontrol_gates_fast_bucket_path():
    mon = Monitor(MonitorConfig(0, 256))
    mon.moncontrol(False)
    mon.tick(8)
    assert sum(mon.histogram.counts) == 0
    mon.moncontrol(True)
    mon.tick(8)
    assert sum(mon.histogram.counts) == 1
