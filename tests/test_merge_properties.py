"""Property tests for the merge algebra.

§3's multi-run accumulation only scales to fleets if merging is a
well-behaved algebra: associative (so a tree of partial merges equals
the sequential fold), commutative on the measurements (so arrival
order cannot change a count), with an identity (the empty profile) and
a no-surprises failure mode (mismatched layouts raise
:class:`~repro.errors.MergeError`, never ``KeyError``/``IndexError``).
These tests pin each law down with hypothesis-generated profiles, for
both the legacy :func:`merge_profiles` API and the streaming
:class:`~repro.fleet.ProfileAccumulator` that fleet merging runs on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Histogram, ProfileData, RawArc, merge_profiles
from repro.errors import MergeError, ReproError
from repro.fleet import ProfileAccumulator, empty_profile_like
from repro.gmon import dumps_gmon, parse_gmon, read_gmon, write_gmon

# -- strategies ------------------------------------------------------------------

#: One shared histogram layout per generated fleet: profiles are only
#: summable when they come from the same executable image.
layouts = st.tuples(
    st.integers(min_value=0, max_value=1 << 20),   # low_pc
    st.integers(min_value=1, max_value=32),        # nbuckets
    st.integers(min_value=1, max_value=16),        # bucket width
    st.sampled_from([60, 100, 1000]),              # profrate
)


def profile_for(layout, draw_counts, draw_arcs, runs, comment):
    low, nbuckets, width, profrate = layout
    high = low + nbuckets * width
    arcs = [RawArc(f, s, c) for (f, s, c) in draw_arcs]
    return ProfileData(
        Histogram(low, high, list(draw_counts), profrate),
        arcs,
        runs=runs,
        comment=comment,
    )


@st.composite
def fleets(draw, min_size=1, max_size=6):
    """A list of mutually-compatible ProfileData."""
    layout = draw(layouts)
    low, nbuckets, width, _ = layout
    high = low + nbuckets * width
    addr = st.integers(min_value=low, max_value=high - 1)
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    out = []
    for i in range(n):
        counts = draw(
            st.lists(st.integers(min_value=0, max_value=50),
                     min_size=nbuckets, max_size=nbuckets)
        )
        arcs = draw(
            st.lists(st.tuples(addr, addr,
                               st.integers(min_value=0, max_value=40)),
                     max_size=8)
        )
        runs = draw(st.integers(min_value=1, max_value=4))
        comment = draw(st.sampled_from(["", f"run-{i}", "batch"]))
        out.append(profile_for(layout, counts, arcs, runs, comment))
    return out


def measurements(data: ProfileData):
    """The order-insensitive content of a profile."""
    return (
        data.histogram.counts,
        data.condensed_arcs(),
        data.runs,
        sorted(data.warnings),
    )


# -- the algebra -----------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(fleets(min_size=2), st.randoms(use_true_random=False))
def test_merge_is_commutative_on_measurements(profiles, rng):
    """Any arrival order yields the same counts, arcs and runs.

    (The provenance comment is deliberately order-sensitive — it is a
    log, not a measurement — so byte-identity is only promised for
    identical input order; see the associativity test.)
    """
    shuffled = list(profiles)
    rng.shuffle(shuffled)
    assert measurements(merge_profiles(shuffled)) == measurements(
        merge_profiles(profiles)
    )


@settings(deadline=None, max_examples=60)
@given(fleets(min_size=2), st.data())
def test_merge_is_associative_byte_for_byte(profiles, data):
    """Any regrouping of the ordered sequence is byte-identical."""
    k = data.draw(st.integers(min_value=1, max_value=len(profiles) - 1))
    grouped = merge_profiles(
        [merge_profiles(profiles[:k]), merge_profiles(profiles[k:])]
    )
    flat = merge_profiles(profiles)
    assert dumps_gmon(grouped) == dumps_gmon(flat)


@settings(deadline=None, max_examples=60)
@given(fleets())
def test_empty_profile_is_the_identity(profiles):
    flat = merge_profiles(profiles)
    identity = empty_profile_like(flat)
    assert dumps_gmon(merge_profiles(profiles + [identity])) == dumps_gmon(flat)
    assert dumps_gmon(merge_profiles([identity] + profiles)) == dumps_gmon(flat)


@settings(deadline=None, max_examples=60)
@given(fleets(min_size=1, max_size=1))
def test_single_element_merge_copies_not_mutates(profiles):
    """merge([p]) equals p (condensed) and shares no mutable state."""
    p = profiles[0]
    before = dumps_gmon(p)
    merged = merge_profiles([p])
    assert merged.runs == p.runs
    assert merged.comment == p.comment
    assert merged.histogram.counts == p.histogram.counts
    assert merged.condensed_arcs() == p.condensed_arcs()
    # mutating the result must never reach back into the input
    assert merged.histogram is not p.histogram
    assert merged.histogram.counts is not p.histogram.counts
    assert merged.arcs is not p.arcs
    assert merged.warnings is not p.warnings
    if merged.histogram.counts:
        merged.histogram.counts[0] += 99
    merged.arcs.append(RawArc(0, 0, 1))
    merged.warnings.append("scribble")
    assert dumps_gmon(p) == before


@settings(deadline=None, max_examples=60)
@given(fleets(min_size=2), st.data())
def test_accumulator_regrouping_matches_flat_merge(profiles, data):
    """Bucket/arc counts are idempotent under any chunked re-grouping.

    Feeding the profiles through chunked accumulators folded in order
    (exactly what the tree-reduction driver does with worker partials)
    is byte-identical to the flat sequential merge.
    """
    nchunks = data.draw(st.integers(min_value=1, max_value=len(profiles)))
    bounds = sorted(
        data.draw(
            st.lists(st.integers(min_value=0, max_value=len(profiles)),
                     min_size=nchunks - 1, max_size=nchunks - 1)
        )
    )
    edges = [0] + bounds + [len(profiles)]
    total = ProfileAccumulator()
    for lo, hi in zip(edges, edges[1:]):
        part = ProfileAccumulator()
        for p in profiles[lo:hi]:
            part.add_profile(p)
        total.merge_from(part)
    assert dumps_gmon(total.result()) == dumps_gmon(merge_profiles(profiles))


@settings(deadline=None, max_examples=30)
@given(profiles=fleets())
def test_accumulator_path_feed_matches_merge_after_roundtrip(
    tmp_path_factory, profiles
):
    """merge(sequential) == merge(tree) byte-for-byte via real files."""
    tmp_path = tmp_path_factory.mktemp("fleet")
    paths = []
    for i, p in enumerate(profiles):
        path = tmp_path / f"gmon_{i}.out"
        write_gmon(p, path)
        paths.append(path)
    sequential = merge_profiles([read_gmon(p) for p in paths])
    acc = ProfileAccumulator()
    for p in paths:
        acc.add(p)
    out = tmp_path / "gmon.sum"
    write_gmon(acc.result(), out)
    assert out.read_bytes() == dumps_gmon(sequential)
    # and the round-trip itself is lossless
    assert dumps_gmon(parse_gmon(out.read_bytes())) == dumps_gmon(sequential)


# -- failure modes ----------------------------------------------------------------


def _tweaked(layout, field):
    low, nbuckets, width, profrate = layout
    if field == "low_pc":
        return (low + 1, nbuckets, width, profrate)
    if field == "nbuckets":
        return (low, nbuckets + 1, width, profrate)
    if field == "width":
        return (low, nbuckets, width + 1, profrate)
    return (low, nbuckets, width, profrate + 7)


@settings(deadline=None, max_examples=40)
@given(layouts, st.sampled_from(["low_pc", "nbuckets", "width", "profrate"]))
def test_mismatched_layouts_raise_merge_error(layout, field):
    """Every layout mismatch is a MergeError — never KeyError/IndexError."""
    a = profile_for(layout, [1] * layout[1], [], 1, "a")
    b = profile_for(_tweaked(layout, field), [2] * _tweaked(layout, field)[1],
                    [], 1, "b")
    for seq in ([a, b], [b, a]):
        try:
            merge_profiles(seq)
        except MergeError as exc:
            assert isinstance(exc, ReproError)
        else:  # pragma: no cover - the algebra would be broken
            pytest.fail("mismatched layouts merged silently")
    acc = ProfileAccumulator()
    acc.add_profile(a, source="a.gmon")
    with pytest.raises(MergeError) as excinfo:
        acc.add_profile(b, source="b.gmon")
    assert excinfo.value.path == "b.gmon"
    assert excinfo.value.expected is not None
    assert excinfo.value.actual is not None
    assert excinfo.value.expected != excinfo.value.actual


def test_zero_profiles_raise_merge_error():
    with pytest.raises(MergeError, match="zero profiles"):
        merge_profiles([])
    with pytest.raises(MergeError, match="zero profiles"):
        ProfileAccumulator().result()


@settings(deadline=None, max_examples=30)
@given(fleets(min_size=2))
def test_salvaged_warnings_survive_the_merge(profiles):
    """A degraded input never becomes pristine by being merged."""
    profiles[0].warnings.extend(
        ["a.gmon: salvage: arc table truncated: 3/9 arcs recovered"]
    )
    profiles[-1].warnings.extend(["b.gmon: salvage: 1 trailing byte(s)"])
    merged = merge_profiles(profiles)
    assert "a.gmon: salvage: arc table truncated: 3/9 arcs recovered" in merged.warnings
    assert "b.gmon: salvage: 1 trailing byte(s)" in merged.warnings
    acc = ProfileAccumulator()
    for p in profiles:
        acc.add_profile(p)
    assert acc.result().warnings == merged.warnings
    assert merged.degraded


@settings(deadline=None, max_examples=40)
@given(fleets(min_size=2, max_size=4), st.data())
def test_runs_counters_sum_across_checkpointed_inputs(profiles, data):
    """runs adds up exactly, through any grouping of partial merges."""
    expected = sum(p.runs for p in profiles)
    assert merge_profiles(profiles).runs == expected
    k = data.draw(st.integers(min_value=1, max_value=len(profiles) - 1))
    regrouped = merge_profiles(
        [merge_profiles(profiles[:k]), merge_profiles(profiles[k:])]
    )
    assert regrouped.runs == expected
