"""Tests for the Rel pretty-printer and its round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.programs import REL_PROGRAMS
from repro.lang import compile_source
from repro.machine import CPU


def roundtrip(src: str) -> str:
    return pretty(parse(src))


class TestPretty:
    def test_canonical_form(self):
        src = "func main(){print 1+2*3;}"
        assert roundtrip(src) == (
            "func main() {\n    print 1 + 2 * 3;\n}\n"
        )

    def test_minimal_parentheses(self):
        out = roundtrip("func main() { print (1 + 2) * (3 - 4); }")
        assert "(1 + 2) * (3 - 4)" in out
        out = roundtrip("func main() { print 1 + (2 * 3); }")
        assert "1 + 2 * 3" in out  # redundant parens dropped

    def test_left_associativity_preserved(self):
        # 10 - (3 - 2) must keep its parens; (10 - 3) - 2 must not.
        out = roundtrip("func main() { print 10 - (3 - 2); }")
        assert "10 - (3 - 2)" in out
        out = roundtrip("func main() { print (10 - 3) - 2; }")
        assert "10 - 3 - 2" in out

    def test_declarations_and_control_flow(self):
        src = """
var g; array a[4];
func f(x, y) { if (x < y) { return x; } else { return y; } }
func main() { i = 0; while (i < 4) { a[i] = f(i, g); i = i + 1; } }
"""
        out = roundtrip(src)
        assert "var g;" in out
        assert "array a[4];" in out
        assert "func f(x, y) {" in out
        assert "} else {" in out
        assert "while (i < 4) {" in out

    def test_printing_is_a_fixed_point(self):
        for name, builder in REL_PROGRAMS.items():
            once = roundtrip(builder())
            twice = roundtrip(once)
            assert once == twice, name

    def test_printed_program_behaves_identically(self):
        for name, builder in REL_PROGRAMS.items():
            src = builder()
            a = CPU(compile_source(src))
            b = CPU(compile_source(roundtrip(src)))
            a.run()
            b.run()
            assert a.output == b.output, name


@st.composite
def rel_expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return str(draw(st.integers(0, 99)))
    op = draw(st.sampled_from(["+", "-", "*", "<", "==", "&&", "||"]))
    return f"({draw(rel_expressions(depth + 1))} {op} {draw(rel_expressions(depth + 1))})"


@settings(max_examples=80)
@given(rel_expressions())
def test_roundtrip_preserves_value_property(expr_text):
    """Property: pretty-printing never changes what an expression
    evaluates to (parenthesization is value-preserving)."""
    src = f"func main() {{ print {expr_text}; }}"
    a = CPU(compile_source(src))
    a.run()
    b = CPU(compile_source(roundtrip(src)))
    b.run()
    assert a.output == b.output
    # and printing the printed form is a fixed point
    assert roundtrip(roundtrip(src)) == roundtrip(src)
