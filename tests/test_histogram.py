"""Unit and property tests for repro.core.histogram."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.histogram import Histogram, sum_histograms
from repro.core.symbols import Symbol, SymbolTable
from repro.errors import HistogramError

from tests.helpers import make_symbols


class TestGeometry:
    def test_for_range_one_to_one(self):
        h = Histogram.for_range(0, 400, scale=1.0)
        assert h.num_buckets == 400
        assert h.bucket_width == 1.0

    def test_for_range_coarse(self):
        # The 16-bit-era configuration: fewer buckets than addresses.
        h = Histogram.for_range(0, 400, scale=0.25)
        assert h.num_buckets == 100
        assert h.bucket_width == 4.0

    def test_empty_range(self):
        h = Histogram.for_range(0, 0)
        assert h.num_buckets == 0
        assert h.total_ticks == 0

    def test_invalid_scale(self):
        with pytest.raises(HistogramError):
            Histogram.for_range(0, 100, scale=0)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(HistogramError):
            Histogram(100, 0, [0])

    def test_negative_count_rejected(self):
        with pytest.raises(HistogramError):
            Histogram(0, 4, [1, -2, 0, 0])

    def test_bad_profrate_rejected(self):
        with pytest.raises(HistogramError):
            Histogram(0, 4, [0, 0, 0, 0], profrate=0)


class TestRecording:
    def test_record_in_and_out_of_range(self):
        h = Histogram.for_range(100, 200)
        assert h.record(100) is True
        assert h.record(199) is True
        assert h.record(200) is False
        assert h.record(50) is False
        assert h.total_ticks == 2

    def test_bucket_for_maps_upper_edge_down(self):
        h = Histogram(0, 10, [0, 0, 0])  # width 10/3
        assert h.bucket_for(9) == 2
        assert h.bucket_for(0) == 0

    def test_total_time_uses_profrate(self):
        h = Histogram.for_range(0, 10, profrate=100)
        for _ in range(250):
            h.record(5)
        assert h.total_time == pytest.approx(2.5)

    def test_reset(self):
        h = Histogram.for_range(0, 10)
        h.record(3)
        h.reset()
        assert h.total_ticks == 0

    def test_copy_is_independent(self):
        h = Histogram.for_range(0, 10)
        c = h.copy()
        h.record(3)
        assert c.total_ticks == 0


class TestAssignSamples:
    def test_exact_when_one_to_one(self):
        syms = make_symbols("a", "b")  # a: [0,100), b: [100,200)
        h = Histogram.for_range(0, 200, scale=1.0, profrate=60)
        for _ in range(30):
            h.record(10)
        for _ in range(60):
            h.record(150)
        times = h.assign_samples(syms)
        assert times["a"] == pytest.approx(0.5)
        assert times["b"] == pytest.approx(1.0)

    def test_coarse_bucket_split_between_symbols(self):
        # One bucket spanning two routines is split by overlap (like
        # gprof's asgnsamples).
        syms = SymbolTable([Symbol(0, "a", 5), Symbol(5, "b", 10)])
        h = Histogram(0, 10, [60], profrate=60)  # a single bucket
        times = h.assign_samples(syms)
        assert times["a"] == pytest.approx(0.5)
        assert times["b"] == pytest.approx(0.5)

    def test_samples_outside_symbols_dropped(self):
        syms = SymbolTable([Symbol(0, "a", 10)])
        h = Histogram.for_range(0, 100, scale=1.0, profrate=60)
        h.record(5)
        h.record(50)  # outside 'a'
        times = h.assign_samples(syms)
        assert times == {"a": pytest.approx(1 / 60)}

    def test_empty_histogram(self):
        syms = make_symbols("a")
        assert Histogram.for_range(0, 0).assign_samples(syms) == {}

    def test_conservation_when_fully_covered(self):
        syms = make_symbols("a", "b", "c")
        h = Histogram.for_range(0, 300, scale=0.1, profrate=60)
        for pc in range(0, 300, 7):
            h.record(pc)
        times = h.assign_samples(syms)
        assert sum(times.values()) == pytest.approx(h.total_time)


class TestSum:
    def test_sum_accumulates(self):
        a = Histogram.for_range(0, 10)
        b = Histogram.for_range(0, 10)
        a.record(3)
        b.record(3)
        b.record(7)
        total = sum_histograms([a, b])
        assert total.total_ticks == 3
        # inputs untouched
        assert a.total_ticks == 1

    def test_sum_incompatible_rejected(self):
        a = Histogram.for_range(0, 10)
        b = Histogram.for_range(0, 20)
        with pytest.raises(HistogramError):
            sum_histograms([a, b])

    def test_sum_different_profrate_rejected(self):
        a = Histogram.for_range(0, 10, profrate=60)
        b = Histogram.for_range(0, 10, profrate=100)
        with pytest.raises(HistogramError):
            sum_histograms([a, b])

    def test_sum_empty_list_rejected(self):
        with pytest.raises(HistogramError):
            sum_histograms([])


@given(
    st.lists(st.integers(min_value=0, max_value=299), min_size=1, max_size=200),
    st.sampled_from([1.0, 0.5, 0.25, 0.1]),
)
def test_no_ticks_lost_inside_range(pcs, scale):
    """Property: every in-range sample lands in exactly one bucket."""
    h = Histogram.for_range(0, 300, scale=scale)
    for pc in pcs:
        assert h.record(pc)
    assert h.total_ticks == len(pcs)


@given(st.lists(st.integers(min_value=0, max_value=299), min_size=1, max_size=200))
def test_assignment_conserves_time(pcs):
    """Property: with full symbol coverage, apportioned time equals
    sampled time regardless of histogram granularity."""
    syms = make_symbols("a", "b", "c")
    h = Histogram.for_range(0, 300, scale=0.13, profrate=60)
    for pc in pcs:
        h.record(pc)
    times = h.assign_samples(syms)
    assert sum(times.values()) == pytest.approx(h.total_time)
