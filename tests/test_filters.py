"""Tests for analysis-side filtering (retrospective features)."""

from repro.core.filters import (
    containing,
    exclude,
    hot_routines,
    reachable_from,
    reaching,
)

from tests.helpers import graph_from_edges


def _graph():
    #        main
    #       /    \
    #   calc1    calc2
    #      \      /
    #      format       io  (separate root)
    #         \        /
    #          write --
    return graph_from_edges(
        ("main", "calc1"),
        ("main", "calc2"),
        ("calc1", "format"),
        ("calc2", "format"),
        ("format", "write"),
        ("io", "write"),
    )


class TestHot:
    def test_threshold(self):
        percents = {"a": 50.0, "b": 10.0, "c": 9.9}
        hot = hot_routines(percents.get, percents, threshold=10.0)
        assert hot == {"a", "b"}

    def test_zero_threshold_keeps_all(self):
        percents = {"a": 0.0, "b": 1.0}
        assert hot_routines(percents.get, percents, 0.0) == {"a", "b"}


class TestReachability:
    def test_reachable_from(self):
        assert reachable_from(_graph(), ["calc1"]) == {
            "calc1",
            "format",
            "write",
        }

    def test_reaching(self):
        # The §6 navigation example: who is above 'write'?
        assert reaching(_graph(), ["write"]) == {
            "write",
            "format",
            "calc1",
            "calc2",
            "main",
            "io",
        }

    def test_containing(self):
        assert containing(_graph(), ["format"]) == {
            "main",
            "calc1",
            "calc2",
            "format",
            "write",
        }

    def test_unknown_names_ignored(self):
        assert reachable_from(_graph(), ["zzz"]) == set()

    def test_multiple_sources(self):
        got = reachable_from(_graph(), ["io", "calc2"])
        assert got == {"io", "calc2", "format", "write"}

    def test_cycle_safe(self):
        g = graph_from_edges(("a", "b"), ("b", "a"), ("b", "c"))
        assert reachable_from(g, ["a"]) == {"a", "b", "c"}
        assert reaching(g, ["a"]) == {"a", "b"}


class TestExclude:
    def test_exclude(self):
        assert exclude(["a", "b", "c"], ["b"]) == {"a", "c"}
