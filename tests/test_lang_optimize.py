"""Tests for the Rel optimizer (folding, pruning, §6 inlining)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.lang import compile_source, compile_to_asm
from repro.lang.programs import REL_PROGRAMS
from repro.machine import CPU, Monitor, MonitorConfig


def run(source, **kw):
    cpu = CPU(compile_source(source, **kw))
    cpu.run()
    return cpu


class TestConstantFolding:
    def test_expressions_fold_to_pushes(self):
        asm = compile_to_asm(
            "func main() { print 2 + 3 * 4; }", optimize_level=1
        )
        assert "PUSH 14" in asm
        assert "MUL" not in asm

    def test_identities(self):
        asm = compile_to_asm(
            "func main() { x = 5; print x + 0; print 1 * x; }",
            optimize_level=1,
        )
        assert "ADD" not in asm
        assert "MUL" not in asm

    def test_division_by_zero_not_folded(self):
        # the fault belongs to run time, not compile time
        from repro.errors import MachineError

        with pytest.raises(MachineError, match="division"):
            run("func main() { print 1 / 0; }", optimize_level=1)

    def test_constant_if_pruned(self):
        asm = compile_to_asm(
            "func f() { return 1; }\n"
            "func main() { if (0) { f(); } print 9; }",
            optimize_level=1,
        )
        assert "CALL f" not in asm

    def test_while_zero_removed(self):
        asm = compile_to_asm(
            "func main() { while (0) { burn 100; } print 1; }",
            optimize_level=1,
        )
        assert "WORK" not in asm

    def test_dead_code_after_return_removed(self):
        asm = compile_to_asm(
            "func f() { return 1; burn 999; }\nfunc main() { print f(); }",
            optimize_level=1,
        )
        assert "WORK 999" not in asm

    def test_effect_free_statement_removed(self):
        asm0 = compile_to_asm("func main() { 42; print 1; }")
        asm1 = compile_to_asm("func main() { 42; print 1; }", optimize_level=1)
        assert "PUSH 42" in asm0
        assert "PUSH 42" not in asm1


class TestInlining:
    SRC = """
func square(x) { return x * x; }
func main() {
    i = 0;
    total = 0;
    while (i < 30) { total = total + square(i); i = i + 1; }
    print total;
}
"""

    def test_inline_removes_the_call_and_the_routine(self):
        asm = compile_to_asm(self.SRC, optimize_level=2)
        assert "CALL square" not in asm
        assert ".func square" not in asm

    def test_inline_preserves_behaviour(self):
        assert (
            run(self.SRC).output
            == run(self.SRC, optimize_level=2).output
            == [sum(i * i for i in range(30))]
        )

    def test_inline_saves_call_overhead(self):
        # §6: "the overhead of a function call and return can be saved
        # for each datum".
        plain = run(self.SRC).cycles
        inlined = run(self.SRC, optimize_level=2).cycles
        assert inlined < plain

    def test_inline_makes_profile_more_granular(self):
        # §6's drawback, measured: after inlining, 'square' vanishes
        # from the profile and its cost hides inside main.
        def profiled(level):
            exe = compile_source(self.SRC, profile=True, optimize_level=level)
            mon = Monitor(
                MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10)
            )
            cpu = CPU(exe, mon)
            cpu.run()
            return analyze(mon.mcleanup(), exe.symbol_table())

        before = profiled(0)
        after = profiled(2)
        assert before.entry("square") is not None
        assert after.entry("square") is None
        # square's cost now hides inside main's *self* time: main's
        # self share of the program jumps (it was ~57%, becomes 100%).
        before_share = before.entry("main").self_seconds / before.total_seconds
        after_share = after.entry("main").self_seconds / after.total_seconds
        assert after_share > before_share + 0.2

    def test_param_used_twice_still_correct(self):
        # square uses x twice: inlining must not duplicate an
        # effectful argument, so such routines are left alone when the
        # argument is a call.
        src = """
func square(x) { return x * x; }
var hits;
func noisy() { hits = hits + 1; return 3; }
func main() { print square(noisy()); print hits; }
"""
        cpu = run(src, optimize_level=2)
        assert cpu.output == [9, 1]  # noisy ran exactly once

    def test_recursive_routine_never_inlined(self):
        src = """
func fact(n) { if (n < 2) { return 1; } return n * fact(n - 1); }
func main() { print fact(6); }
"""
        assert run(src, optimize_level=2).output == [720]


class TestOptimizationSoundness:
    @pytest.mark.parametrize("name", sorted(REL_PROGRAMS))
    @pytest.mark.parametrize("level", [1, 2])
    def test_canned_programs_unchanged(self, name, level):
        src = REL_PROGRAMS[name]()
        assert run(src).output == run(src, optimize_level=level).output

    @pytest.mark.parametrize("name", sorted(REL_PROGRAMS))
    def test_optimized_never_slower(self, name):
        src = REL_PROGRAMS[name]()
        assert run(src, optimize_level=2).cycles <= run(src).cycles


@settings(max_examples=60)
@given(st.data())
def test_folding_matches_evaluation_property(data):
    """Property: for random constant expressions, -O1 folds to exactly
    the value -O0 computes."""

    def build(depth):
        if depth >= 3 or data.draw(st.booleans()):
            return str(data.draw(st.integers(0, 30)))
        op = data.draw(st.sampled_from(["+", "-", "*"]))
        return f"({build(depth + 1)} {op} {build(depth + 1)})"

    text = build(0)
    src = f"func main() {{ print {text}; }}"
    assert run(src).output == run(src, optimize_level=1).output
    asm = compile_to_asm(src, optimize_level=1)
    body_ops = [
        l.strip().split()[0]
        for l in asm.splitlines()
        if l.strip() and not l.startswith((".", "_"))
    ]
    assert body_ops.count("ADD") + body_ops.count("MUL") == 0
