"""Tier-1 tests for the fleet aggregation subsystem.

Two halves:

* the paper's multi-run claim — "N short runs recover a long run's
  per-call estimate" — checked on every pytest run, not only under
  pytest-benchmark (it used to live solely in ``bench_merge.py``);
* the :mod:`repro.fleet` driver: input expansion, header precheck,
  tree reduction determinism (byte-identical output for any worker
  count), salvage propagation, and the ``repro-merge`` /
  ``repro-gprof --sum`` CLIs.
"""

from __future__ import annotations

import random

import pytest

from repro.core import analyze, merge_profiles
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.arcs import RawArc
from repro.errors import GmonFormatError, MergeError
from repro.fleet import (
    HeaderCache,
    HeaderKey,
    ProfileAccumulator,
    expand_inputs,
    merge_paths,
    precheck_headers,
    tree_reduce,
)
from repro.gmon import dumps_gmon, peek_gmon_header, read_gmon, write_gmon
from repro.machine import assemble, run_profiled

#: A very short-running program: one call to a small routine (the
#: motivating case for summing — one run gathers almost no samples).
SHORT = """
.func main
    CALL quick
    HALT
.end

.func quick
    WORK 37
    RET
.end
"""


def _synthetic_fleet(tmp_path, n, seed=11, nbuckets=64, narcs=12,
                     comment="run"):
    rng = random.Random(seed)
    paths = []
    for i in range(n):
        hist = Histogram(0, nbuckets * 8,
                         [rng.randrange(6) for _ in range(nbuckets)], 60)
        arcs = [
            RawArc(rng.randrange(0, nbuckets * 8, 4),
                   rng.randrange(0, nbuckets * 8, 4),
                   rng.randrange(1, 7))
            for _ in range(narcs)
        ]
        path = tmp_path / f"gmon_{i:04d}.out"
        write_gmon(ProfileData(hist, arcs, comment=f"{comment}-{i:04d}"), path)
        paths.append(str(path))
    return paths


# -- the paper's claim, as a regression test -------------------------------------


class TestAccumulationShape:
    def test_twenty_short_runs_recover_the_short_routine(self):
        symbols = assemble(SHORT, profile=True).symbol_table()
        single = run_profiled(SHORT, name="short", cycles_per_tick=25)[1]
        runs = [
            run_profiled(SHORT, name="short", cycles_per_tick=25)[1]
            for _ in range(20)
        ]
        merged = merge_profiles(runs)
        single_quick = analyze(single, symbols).entry("quick")
        merged_quick = analyze(merged, symbols).entry("quick")
        assert merged.runs == 20
        assert merged_quick.ncalls == 20
        assert merged.total_ticks == pytest.approx(
            20 * single.total_ticks, abs=20
        )
        # the merged profile accumulates measurable time for 'quick'
        assert merged_quick.self_seconds > single_quick.self_seconds

    def test_summed_short_runs_match_long_run_split(self):
        from repro.machine.programs import abstraction

        src = abstraction(iterations=8)
        symbols = assemble(src, profile=True).symbol_table()
        shorts = [
            run_profiled(src, name="short", cycles_per_tick=11)[1]
            for _ in range(10)
        ]
        merged_profile = analyze(merge_profiles(shorts), symbols)
        long_profile = analyze(
            run_profiled(abstraction(iterations=80), name="long",
                         cycles_per_tick=11)[1],
            symbols,
        )
        for name in ("write", "format1", "format2"):
            assert merged_profile.entry(name).percent == pytest.approx(
                long_profile.entry(name).percent, abs=3.0
            )


# -- input expansion --------------------------------------------------------------


class TestExpandInputs:
    def test_plain_files_keep_their_order(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 3)
        assert expand_inputs([paths[2], paths[0]]) == [paths[2], paths[0]]

    def test_directory_is_sorted(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 4)
        (tmp_path / ".hidden").write_bytes(b"junk")
        assert expand_inputs([str(tmp_path)]) == sorted(paths)

    def test_glob_is_sorted(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 4)
        assert expand_inputs([str(tmp_path / "gmon_*.out")]) == sorted(paths)

    def test_empty_glob_is_an_error(self, tmp_path):
        with pytest.raises(MergeError, match="matched no files"):
            expand_inputs([str(tmp_path / "nope_*.out")])

    def test_empty_directory_is_an_error(self, tmp_path):
        empty = tmp_path / "void"
        empty.mkdir()
        with pytest.raises(MergeError, match="no profile files"):
            expand_inputs([str(empty)])


# -- header precheck --------------------------------------------------------------


class TestHeaderPrecheck:
    def test_peek_matches_full_parse(self, tmp_path):
        path = _synthetic_fleet(tmp_path, 1)[0]
        header = peek_gmon_header(path)
        data = read_gmon(path)
        assert HeaderKey.of(header) == HeaderKey(
            data.histogram.low_pc, data.histogram.high_pc,
            data.histogram.num_buckets, data.histogram.profrate,
        )
        assert header.comment == data.comment

    def test_incompatible_file_fails_early_and_structured(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 3)
        odd = tmp_path / "odd.out"
        write_gmon(ProfileData(Histogram(0, 1024, [0] * 64, 100), []), odd)
        with pytest.raises(MergeError) as excinfo:
            tree_reduce(paths + [str(odd)])
        assert excinfo.value.path == str(odd)
        assert isinstance(excinfo.value.expected, HeaderKey)
        assert isinstance(excinfo.value.actual, HeaderKey)
        assert excinfo.value.actual.profrate == 100

    def test_skip_mode_merges_the_rest(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 3)
        odd = tmp_path / "odd.out"
        write_gmon(ProfileData(Histogram(0, 1024, [0] * 64, 100), []), odd)
        merged = tree_reduce(paths + [str(odd)], on_incompatible="skip")
        assert dumps_gmon(merged) != b""
        assert any("skipped" in w for w in merged.warnings)
        clean = tree_reduce(paths)
        assert merged.runs == clean.runs
        assert merged.histogram.counts == clean.histogram.counts

    def test_header_cache_hits_on_unchanged_files(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 5)
        cache = HeaderCache()
        precheck_headers(paths, cache=cache)
        assert cache.misses == 5 and cache.hits == 0
        precheck_headers(paths, cache=cache)
        assert cache.hits == 5


# -- the tree-reduction driver ----------------------------------------------------


class TestTreeReduce:
    def test_matches_the_sequential_fold_byte_for_byte(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 30)
        sequential = merge_profiles([read_gmon(p) for p in paths])
        assert dumps_gmon(tree_reduce(paths, jobs=1)) == dumps_gmon(sequential)

    def test_worker_count_never_changes_the_bytes(self, tmp_path, monkeypatch):
        import repro.fleet.reduce as reduce_mod

        monkeypatch.setattr(reduce_mod, "MIN_FILES_PER_WORKER", 1)
        paths = _synthetic_fleet(tmp_path, 17)
        reference = dumps_gmon(tree_reduce(paths, jobs=1))
        for jobs in (2, 3):
            assert dumps_gmon(tree_reduce(paths, jobs=jobs)) == reference

    def test_merge_paths_expands_globs_and_directories(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 6)
        reference = dumps_gmon(tree_reduce(sorted(paths), jobs=1))
        via_glob = merge_paths([str(tmp_path / "gmon_*.out")], jobs=1)
        via_dir = merge_paths([str(tmp_path)], jobs=1)
        assert dumps_gmon(via_glob) == reference
        assert dumps_gmon(via_dir) == reference

    def test_zero_inputs_raise(self):
        with pytest.raises(MergeError, match="zero profiles"):
            tree_reduce([])

    def test_salvaged_input_merges_with_warnings(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 4)
        blob = (tmp_path / "gmon_0000.out").read_bytes()
        torn = tmp_path / "gmon_0000.out"
        torn.write_bytes(blob[:-10])  # tear inside the arc table
        with pytest.raises(GmonFormatError):
            tree_reduce(paths, jobs=1)
        merged = tree_reduce(paths, jobs=1, salvage=True)
        assert merged.degraded
        assert any(
            "arc table truncated" in w and str(torn) in w
            for w in merged.warnings
        )
        assert merged.runs == 4

    def test_runs_zero_checkpoint_clamped_with_warning(self, tmp_path):
        good = _synthetic_fleet(tmp_path, 1)
        chk = tmp_path / "checkpoint.out"
        data = read_gmon(good[0]).copy()
        data.runs = 0
        write_gmon(data, chk)
        merged = tree_reduce(good + [str(chk)], jobs=1)
        assert merged.runs == 2  # 1 + clamped 1
        assert any("runs == 0" in w for w in merged.warnings)

    def test_runs_sum_across_checkpoints(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 2)
        a = read_gmon(paths[0]).copy()
        a.runs = 3
        write_gmon(a, paths[0])
        b = read_gmon(paths[1]).copy()
        b.runs = 4
        write_gmon(b, paths[1])
        assert tree_reduce(paths, jobs=1).runs == 7


# -- the accumulator directly -----------------------------------------------------


class TestProfileAccumulator:
    def test_streaming_matches_batch(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 8)
        acc = ProfileAccumulator()
        for p in paths:
            acc.add(p)
        assert not acc.empty
        assert acc.profiles_added == 8
        batch = merge_profiles([read_gmon(p) for p in paths])
        assert dumps_gmon(acc.result()) == dumps_gmon(batch)
        assert acc.total_ticks == batch.total_ticks
        assert acc.distinct_arcs == len(batch.arcs)

    def test_add_accepts_bytes_and_profiles(self, tmp_path):
        paths = _synthetic_fleet(tmp_path, 3)
        reference = merge_profiles([read_gmon(p) for p in paths])
        acc = ProfileAccumulator()
        acc.add(paths[0])
        with open(paths[1], "rb") as f:
            acc.add(f.read())
        acc.add(read_gmon(paths[2]))
        assert dumps_gmon(acc.result()) == dumps_gmon(reference)

    def test_inputs_are_never_mutated(self, tmp_path):
        path = _synthetic_fleet(tmp_path, 1)[0]
        data = read_gmon(path)
        before = dumps_gmon(data)
        acc = ProfileAccumulator()
        acc.add_profile(data)
        result = acc.result()
        result.histogram.counts[0] += 5
        result.arcs.append(RawArc(0, 0, 1))
        result.warnings.append("scribble")
        assert dumps_gmon(data) == before


# -- the CLIs ---------------------------------------------------------------------


class TestMergeCli:
    def test_merge_and_read_back(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main

        paths = _synthetic_fleet(tmp_path, 10)
        out = tmp_path / "gmon.sum"
        assert merge_main(
            ["-o", str(out), str(tmp_path / "gmon_*.out"), "--stats"]
        ) == 0
        captured = capsys.readouterr()
        assert "summed 10 profile(s)" in captured.out
        assert "10 input(s) merged" in captured.err
        summed = read_gmon(out)
        reference = merge_profiles([read_gmon(p) for p in sorted(paths)])
        assert out.read_bytes() == dumps_gmon(reference)
        assert summed.runs == 10

    def test_incompatible_input_fails_with_path(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main

        _synthetic_fleet(tmp_path, 2)
        odd = tmp_path / "odd.out"
        write_gmon(ProfileData(Histogram(0, 8, [0], 100), []), odd)
        assert merge_main(["-o", str(tmp_path / "s"), str(tmp_path)]) == 1
        assert "odd.out" in capsys.readouterr().err

    def test_salvage_flag_recovers_torn_file(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main

        paths = _synthetic_fleet(tmp_path, 3)
        blob = (tmp_path / "gmon_0001.out").read_bytes()
        (tmp_path / "gmon_0001.out").write_bytes(blob[:-7])
        out = tmp_path / "gmon.sum"
        assert merge_main(["-o", str(out), "--salvage", str(tmp_path)]) == 0
        assert "salvage" in capsys.readouterr().err
        assert read_gmon(out).runs == 3

    def test_bad_jobs_rejected(self, capsys):
        from repro.cli.merge_cli import main as merge_main

        assert merge_main(["--jobs", "0", "whatever"]) == 2

    def test_stats_report_backend_and_phase_split(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main

        _synthetic_fleet(tmp_path, 5)
        out = tmp_path / "gmon.sum"
        assert merge_main(
            ["-o", str(out), str(tmp_path / "gmon_*.out"),
             "--stats", "--kernels", "python"]
        ) == 0
        err = capsys.readouterr().err
        assert "kernel backend python" in err
        assert "parse" in err and "fold" in err
        assert "5 wire input(s)" in err

    def test_kernels_flag_never_changes_the_bytes(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main
        from repro.core import kernels

        _synthetic_fleet(tmp_path, 6)
        outputs = set()
        for backend in kernels.available_backends():
            out = tmp_path / f"sum.{backend}"
            assert merge_main(
                ["-o", str(out), str(tmp_path / "gmon_*.out"),
                 "--kernels", backend, "-q"]
            ) == 0
            outputs.add(out.read_bytes())
        assert len(outputs) == 1

    def test_unknown_kernels_backend_is_an_error(self, tmp_path, capsys):
        from repro.cli.merge_cli import main as merge_main

        _synthetic_fleet(tmp_path, 2)
        assert merge_main(
            ["-o", str(tmp_path / "s"), str(tmp_path), "--kernels", "cuda"]
        ) == 1
        assert "unknown kernel backend" in capsys.readouterr().err


class TestGprofSum:
    def test_sum_accepts_globs(self, tmp_path, capsys):
        from repro.cli.gprof_cli import main as gprof_main
        from repro.machine.programs import abstraction

        src = abstraction(iterations=4)
        exe = assemble(src, name="abs", profile=True)
        image = tmp_path / "abs.vmexe"
        exe.save(image)
        for i in range(3):
            write_gmon(run_profiled(src, name="abs")[1],
                       tmp_path / f"run{i}.gmon")
        out = tmp_path / "gmon.sum"
        assert gprof_main(
            [str(image), str(tmp_path / "run*.gmon"), "--sum", str(out)]
        ) == 0
        assert "summed 3 profile(s)" in capsys.readouterr().out
        assert read_gmon(out).runs == 3
