"""Integration tests for the analysis pipeline (repro.core.analysis)."""

import pytest

from repro.core import AnalysisOptions, analyze

from tests.helpers import make_symbols, profile_data


def simple_profile(**opts):
    symbols = make_symbols("main", "worker", "helper", "unused")
    data = profile_data(
        symbols,
        [
            ("<spontaneous>", "main", 1),
            ("main", "worker", 10),
            ("worker", "helper", 30),
        ],
        ticks={"main": 6, "worker": 30, "helper": 24},
    )
    return analyze(data, symbols, AnalysisOptions(**opts) if opts else None)


class TestBasics:
    def test_total_time(self):
        profile = simple_profile()
        assert profile.total_seconds == pytest.approx(1.0)

    def test_entries_sorted_by_total_time(self):
        profile = simple_profile()
        totals = [e.total_seconds for e in profile.graph_entries]
        assert totals == sorted(totals, reverse=True)
        assert profile.graph_entries[0].name == "main"

    def test_indices_are_one_based_positions(self):
        profile = simple_profile()
        for i, entry in enumerate(profile.graph_entries, start=1):
            assert entry.index == i
            assert profile.index_of(entry.name) == i

    def test_flat_profile_sorted_by_self_time(self):
        profile = simple_profile()
        selfs = [f.self_seconds for f in profile.flat_entries]
        assert selfs == sorted(selfs, reverse=True)
        assert profile.flat_entries[0].name == "worker"

    def test_flat_self_times_sum_to_total(self):
        # §5.1: "for this profile, the individual times sum to the total
        # execution time."
        profile = simple_profile()
        assert sum(f.self_seconds for f in profile.flat_entries) == pytest.approx(
            profile.total_seconds
        )

    def test_never_called_listed(self):
        profile = simple_profile()
        assert profile.never_called == ["unused"]

    def test_spontaneous_main(self):
        profile = simple_profile()
        entry = profile.entry("main")
        assert entry.ncalls == 1
        assert entry.parents[0].name is None  # <spontaneous>

    def test_percent_of(self):
        profile = simple_profile()
        assert profile.percent_of("main") == pytest.approx(100.0)
        assert profile.percent_of("missing") == 0.0

    def test_ms_per_call(self):
        profile = simple_profile()
        helper = next(f for f in profile.flat_entries if f.name == "helper")
        # helper: 0.4s over 30 calls.
        assert helper.self_ms_per_call == pytest.approx(400 / 30)
        assert helper.total_ms_per_call == pytest.approx(400 / 30)


class TestOptions:
    def test_exclusion_removes_routine_and_time(self):
        profile = simple_profile(excluded=["helper"])
        assert profile.entry("helper") is None
        # helper's 0.4s vanish from the analysis entirely.
        assert profile.total_seconds == pytest.approx(0.6)
        assert profile.entry("worker").child_seconds == pytest.approx(0.0)

    def test_deleted_arc_stops_propagation(self):
        profile = simple_profile(deleted_arcs=[("worker", "helper")])
        assert profile.entry("worker").child_seconds == pytest.approx(0.0)
        # helper keeps its own time; the program total is unchanged.
        assert profile.total_seconds == pytest.approx(1.0)
        assert [
            (r.caller, r.callee) for r in profile.removed_arcs
        ] == [("worker", "helper")]

    def test_static_arcs_added_with_zero_counts(self):
        profile = simple_profile(static_arcs=[("main", "helper")])
        children = profile.entry("main").children
        helper_line = next(c for c in children if c.name == "helper")
        assert helper_line.count == 0
        assert helper_line.self_share == 0.0

    def test_static_arc_can_change_cycle_membership(self):
        # A dynamic a→b plus a static b→a completes a cycle (§4: done
        # before topological ordering).
        symbols = make_symbols("a", "b")
        data = profile_data(symbols, [("a", "b", 5)], ticks={"a": 6, "b": 6})
        profile = analyze(
            data, symbols, AnalysisOptions(static_arcs=[("b", "a")])
        )
        assert len(profile.numbered.cycles) == 1

    def test_auto_break_cycles(self):
        symbols = make_symbols("m", "x", "y")
        data = profile_data(
            symbols,
            [("m", "x", 50), ("x", "y", 50), ("y", "x", 2)],
            ticks={"x": 30, "y": 30},
        )
        profile = analyze(data, symbols, AnalysisOptions(auto_break_cycles=True))
        assert profile.numbered.cycles == []
        assert [(r.caller, r.callee) for r in profile.removed_arcs] == [("y", "x")]
        # with the cycle broken, x inherits y's time again
        assert profile.entry("x").child_seconds == pytest.approx(0.5)


class TestSampledOnlyRoutines:
    def test_sampled_but_never_called_routine_appears(self):
        # A routine compiled without the monitoring prologue: histogram
        # ticks but no arcs (§3.1's partial-profiling case).
        symbols = make_symbols("main", "library_fn")
        data = profile_data(
            symbols,
            [("<spontaneous>", "main", 1)],
            ticks={"main": 6, "library_fn": 12},
        )
        profile = analyze(data, symbols)
        entry = profile.entry("library_fn")
        assert entry is not None
        assert entry.self_seconds == pytest.approx(0.2)
        assert entry.ncalls == 0
        flat = next(f for f in profile.flat_entries if f.name == "library_fn")
        assert flat.calls is None

    def test_empty_profile(self):
        symbols = make_symbols("main")
        data = profile_data(symbols, [])
        profile = analyze(data, symbols)
        assert profile.total_seconds == 0.0
        assert profile.graph_entries == []
        assert profile.never_called == ["main"]
