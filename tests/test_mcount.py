"""Tests for the monitoring routine's arc table (§3.1)."""

import pytest

from repro.core.arcs import RawArc
from repro.machine.mcount import (
    MCOUNT_BASE_COST,
    MCOUNT_PROBE_COST,
    ArcTable,
)


class TestRecording:
    def test_first_traversal_creates_arc(self):
        t = ArcTable()
        t.record(100, 200)
        assert t.arcs() == [RawArc(100, 200, 1)]

    def test_repeat_traversals_increment(self):
        t = ArcTable()
        for _ in range(5):
            t.record(100, 200)
        assert t.arcs() == [RawArc(100, 200, 5)]
        assert len(t) == 1

    def test_distinct_call_sites_distinct_arcs(self):
        t = ArcTable()
        t.record(100, 200)
        t.record(104, 200)
        assert len(t) == 2

    def test_spontaneous_recorded_at_zero(self):
        t = ArcTable()
        t.record(None, 200)
        assert t.arcs() == [RawArc(0, 200, 1)]
        assert t.stats.spontaneous == 1

    def test_reset_clears_arcs_keeps_stats(self):
        t = ArcTable()
        t.record(100, 200)
        t.reset()
        assert t.arcs() == []
        assert t.stats.lookups == 1


class TestHashBehaviour:
    def test_ordinary_call_site_single_probe(self):
        # "Since each call site typically calls only one callee, we can
        # reduce (usually to one) the number of minor lookups."
        t = ArcTable()
        for _ in range(100):
            t.record(100, 200)
        assert t.stats.lookups == 100
        assert t.stats.probes == 100
        assert t.stats.collisions == 0
        assert t.stats.mean_probes == 1.0

    def test_functional_parameter_site_collides(self):
        # One CALLI site reaching three callees: the secondary key works.
        t = ArcTable()
        for callee in (200, 300, 400):
            for _ in range(10):
                t.record(100, callee)
        assert len(t) == 3
        assert t.stats.collisions > 0
        # first callee: 1 probe; second: 2; third: 3 — still bounded by
        # the number of distinct destinations of this one site.
        assert t.stats.mean_probes <= 3.0

    def test_cost_model(self):
        t = ArcTable()
        assert t.record(100, 200) == MCOUNT_BASE_COST + MCOUNT_PROBE_COST
        # A colliding site pays more per probe.
        t.record(100, 300)
        cost = t.record(100, 300)
        assert cost == MCOUNT_BASE_COST + 2 * MCOUNT_PROBE_COST

    def test_mean_probes_empty_table(self):
        assert ArcTable().stats.mean_probes == 0.0


class TestCondensation:
    def test_arcs_sorted_and_stable(self):
        t = ArcTable()
        t.record(200, 50)
        t.record(100, 70)
        t.record(100, 60)
        assert t.arcs() == [
            RawArc(100, 60, 1),
            RawArc(100, 70, 1),
            RawArc(200, 50, 1),
        ]
