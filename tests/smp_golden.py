"""Frozen SMP fixtures: merged-profile digests and the bias curve.

Two fixtures under ``tests/golden/``:

* ``smp_corpus_n4.json`` — for every canned program, the blake2b
  digest of the merged ``gmon`` bytes from a 4-CPU, 4-process run
  (rr, seed 0).  Because the merge is schedule-independent, this one
  digest per program pins the profile for *every* CPU count, seed,
  and policy — the equivalence suite checks exactly that.

* ``smp_bias.json`` — the §3.2 elapsed-time over-report ratio as the
  machine grows to N ∈ {1, 2, 4, 8} CPUs (skew scheduling), plus the
  per-process sampled tick count, which must not move at all.

Regenerating is a conscious act::

    PYTHONPATH=src python -m tests.smp_golden --update

(only legitimate after a deliberate, reviewed change to the machine's
cost model or the gmon wire format.)
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

from repro.gmon import dumps_gmon
from repro.machine import assemble
from repro.machine.programs import PROGRAMS
from repro.machine.smp import SMPMachine
from repro.machine.timeshare import ElapsedTimeProfiler

#: Where the frozen fixtures live.
GOLDEN_DIR = Path(__file__).parent / "golden"

CORPUS_PATH = GOLDEN_DIR / "smp_corpus_n4.json"
BIAS_PATH = GOLDEN_DIR / "smp_bias.json"

#: The canonical geometry the corpus digests are taken at.  Any other
#: (ncpus, seed, policy) must reproduce the same bytes.
CORPUS_NCPUS = 4
CORPUS_NPROCS = 4

#: CPU counts the bias curve is measured at (M = N processes each).
BIAS_NCPUS = (1, 2, 4, 8)
BIAS_PROGRAM = "dispatch"
BIAS_QUANTUM = 400
BIAS_SEED = 7


def merged_gmon_bytes(
    name: str,
    ncpus: int = CORPUS_NCPUS,
    nprocs: int = CORPUS_NPROCS,
    policy: str = "rr",
    seed: int = 0,
    quantum: int = 500,
    engine: str = "fast",
) -> bytes:
    """One canned program's merged profile bytes under a schedule."""
    exe = assemble(PROGRAMS[name](), name=name, profile=True)
    machine = SMPMachine(
        exe,
        ncpus=ncpus,
        nprocs=nprocs,
        policy=policy,
        seed=seed,
        quantum=quantum,
        engine=engine,
        cycles_per_tick=25,
    )
    machine.run()
    return dumps_gmon(machine.merged_profile(comment=name))


def corpus_digest(name: str, **kw) -> str:
    return hashlib.blake2b(merged_gmon_bytes(name, **kw), digest_size=16).hexdigest()


def compute_corpus() -> dict[str, str]:
    """Digest every canned program at the canonical geometry."""
    return {name: corpus_digest(name) for name in sorted(PROGRAMS)}


def bias_run(ncpus: int) -> dict:
    """The §3.2 experiment at one machine width.

    N processes of the same program on N CPUs under skew scheduling
    (random per-slice quanta): the wall clock advances at the *slowest*
    CPU's pace each round, so wall-clock entry-to-exit timing inflates
    with machine width while each process's own sampled profile is
    untouched.  Returns the summed elapsed-time measurement, the true
    (cycle-clock) inclusive time, and per-process tick counts.
    """
    exe = assemble(PROGRAMS[BIAS_PROGRAM](), name=BIAS_PROGRAM, profile=True)
    machine = SMPMachine(
        exe,
        ncpus=ncpus,
        nprocs=ncpus,
        policy="skew",
        seed=BIAS_SEED,
        quantum=BIAS_QUANTUM,
        cycles_per_tick=25,
    )
    profilers = []
    for proc in machine.procs:
        profiler = ElapsedTimeProfiler(clock=proc.wall_clock)
        proc.cpu.tracer = profiler
        profilers.append(profiler)
    machine.run()
    elapsed = sum(
        sum(p.inclusive_wall.values()) for p in profilers
    )
    true_cycles = sum(p.cpu.cycles for p in machine.procs)
    return {
        "ncpus": ncpus,
        "elapsed_wall": elapsed,
        "true_cycles": true_cycles,
        "over_report": round(elapsed / true_cycles, 6),
        "merged_ticks": machine.total_ticks(),
        "merged_calls": machine.total_calls(),
        "wall_cycles": machine.wall_cycles,
    }


def compute_bias() -> dict:
    """The full bias curve across machine widths."""
    runs = [bias_run(n) for n in BIAS_NCPUS]
    return {
        "program": BIAS_PROGRAM,
        "policy": "skew",
        "seed": BIAS_SEED,
        "quantum": BIAS_QUANTUM,
        "runs": runs,
    }


def load_corpus() -> dict[str, str]:
    return json.loads(CORPUS_PATH.read_text(encoding="utf-8"))


def load_bias() -> dict:
    return json.loads(BIAS_PATH.read_text(encoding="utf-8"))


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--update" not in argv:
        print("refusing to overwrite fixtures without --update", file=sys.stderr)
        return 2
    GOLDEN_DIR.mkdir(exist_ok=True)
    corpus = compute_corpus()
    CORPUS_PATH.write_text(
        json.dumps(corpus, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"froze {CORPUS_PATH} ({len(corpus)} programs)")
    bias = compute_bias()
    BIAS_PATH.write_text(
        json.dumps(bias, indent=2) + "\n", encoding="utf-8"
    )
    ratios = [r["over_report"] for r in bias["runs"]]
    print(f"froze {BIAS_PATH} (over-report {ratios})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
