"""Tests for cycle discovery and topological numbering (§4, Figures 1-3)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cycles import (
    condensation_arcs,
    number_graph,
    paper_numbering,
    strongly_connected_components,
    verify_topological,
)

from tests.helpers import graph_from_edges


class TestSCC:
    def test_acyclic_graph_all_trivial(self):
        g = graph_from_edges(("a", "b"), ("b", "c"), ("a", "c"))
        comps = strongly_connected_components(g)
        assert sorted(map(tuple, comps)) == [("a",), ("b",), ("c",)]

    def test_two_node_cycle(self):
        g = graph_from_edges(("a", "b"), ("b", "a"))
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert set(comps[0]) == {"a", "b"}

    def test_self_loop_is_trivial_component(self):
        g = graph_from_edges(("a", "a"))
        comps = strongly_connected_components(g)
        assert comps == [["a"]]

    def test_emission_order_is_reverse_topological(self):
        # Callees' components must be emitted before callers'.
        g = graph_from_edges(("root", "x"), ("x", "y"), ("y", "x"), ("x", "leaf"))
        comps = strongly_connected_components(g)
        pos = {frozenset(c): i for i, c in enumerate(map(frozenset, comps))}
        assert pos[frozenset(["leaf"])] < pos[frozenset(["x", "y"])]
        assert pos[frozenset(["x", "y"])] < pos[frozenset(["root"])]

    def test_deep_chain_does_not_recurse(self):
        # The iterative implementation must survive graphs deeper than
        # Python's recursion limit.
        edges = [(f"f{i}", f"f{i+1}") for i in range(5000)]
        g = graph_from_edges(*edges)
        comps = strongly_connected_components(g)
        assert len(comps) == 5001


class TestNumbering:
    def test_self_recursion_not_collapsed(self):
        # §5.2: self-recursive routines are handled by the 10+4 call
        # notation, not by cycle collapsing.
        g = graph_from_edges(("main", "f"), ("f", "f"))
        numbered = number_graph(g)
        assert numbered.cycles == []
        assert numbered.representative["f"] == "f"

    def test_mutual_recursion_collapsed(self):
        g = graph_from_edges(("main", "even"), ("even", "odd"), ("odd", "even"))
        numbered = number_graph(g)
        assert len(numbered.cycles) == 1
        cycle = numbered.cycles[0]
        assert set(cycle.members) == {"even", "odd"}
        assert numbered.representative["even"] == cycle.name
        assert numbered.representative["odd"] == cycle.name
        assert numbered.is_cycle(cycle.name)

    def test_cycle_lookup_helpers(self):
        g = graph_from_edges(("a", "b"), ("b", "a"))
        numbered = number_graph(g)
        cyc = numbered.cycle_of("a")
        assert cyc is not None
        assert "b" in cyc
        assert numbered.members_of(cyc.name) == cyc.members
        assert numbered.members_of("nonmember") == ("nonmember",)

    def test_arcs_descend_in_number(self):
        g = graph_from_edges(
            ("main", "a"), ("main", "b"), ("a", "c"), ("b", "c"), ("c", "d")
        )
        numbered = number_graph(g)
        verify_topological(numbered)  # must not raise
        num = numbered.topo_number
        assert num["main"] > num["a"] > num["c"] > num["d"]

    def test_paper_numbering_is_topo_number(self):
        g = graph_from_edges(("main", "a"), ("a", "b"))
        numbered = number_graph(g)
        assert paper_numbering(numbered) == numbered.topo_number

    def test_condensation_drops_intra_cycle_arcs(self):
        g = graph_from_edges(
            ("main", "x", 5), ("x", "y", 9), ("y", "x", 9), ("x", "leaf", 2)
        )
        numbered = number_graph(g)
        arcs = condensation_arcs(numbered)
        cyc = numbered.cycles[0].name
        assert arcs == {("main", cyc): 5, (cyc, "leaf"): 2}

    def test_condensation_sums_counts_into_cycle(self):
        g = graph_from_edges(
            ("p", "x", 3), ("p", "y", 4), ("x", "y", 1), ("y", "x", 1)
        )
        numbered = number_graph(g)
        cyc = numbered.cycles[0].name
        assert condensation_arcs(numbered)[("p", cyc)] == 7


def _random_digraph(edge_list, n):
    edges = [(f"n{a % n}", f"n{b % n}") for a, b in edge_list]
    return graph_from_edges(*edges) if edges else graph_from_edges()


@settings(max_examples=60)
@given(
    st.integers(min_value=2, max_value=12),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        min_size=1,
        max_size=50,
    ),
)
def test_scc_matches_networkx(n, edge_list):
    """Property: our Tarjan agrees with networkx on random digraphs."""
    g = _random_digraph(edge_list, n)
    ours = {frozenset(c) for c in strongly_connected_components(g)}
    nxg = nx.DiGraph()
    nxg.add_nodes_from(g.nodes())
    nxg.add_edges_from((a.caller, a.callee) for a in g.arcs())
    theirs = {frozenset(c) for c in nx.strongly_connected_components(nxg)}
    assert ours == theirs


@settings(max_examples=60)
@given(
    st.integers(min_value=2, max_value=12),
    st.lists(
        st.tuples(st.integers(0, 11), st.integers(0, 11)),
        min_size=1,
        max_size=50,
    ),
)
def test_numbering_invariant_on_random_graphs(n, edge_list):
    """Property: after collapsing, every arc descends in topo number,
    and every node has exactly one representative."""
    g = _random_digraph(edge_list, n)
    numbered = number_graph(g)
    verify_topological(numbered)
    assert set(numbered.representative) == set(g.nodes())
    reps = set(numbered.topo_order)
    for node, rep in numbered.representative.items():
        assert rep in reps


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        min_size=1,
        max_size=40,
    )
)
def test_cycle_members_partition_nodes(edge_list):
    """Property: cycles are disjoint and cover exactly the nodes whose
    representative is a cycle."""
    g = _random_digraph(edge_list, 10)
    numbered = number_graph(g)
    seen = set()
    for cyc in numbered.cycles:
        assert len(cyc.members) > 1
        assert not seen & set(cyc.members)
        seen |= set(cyc.members)
    in_cycles = {
        node
        for node, rep in numbered.representative.items()
        if rep != node
    }
    assert in_cycles == seen
