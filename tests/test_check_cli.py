"""Tests for the repro-check CLI and the gprof --lint integration."""

import json

import pytest

from repro.cli.check_cli import main as check_main
from repro.cli.gprof_cli import main as gprof_main
from repro.gmon import read_gmon, write_gmon
from repro.machine import assemble, run_profiled
from repro.machine.programs import PROGRAMS

BROKEN = ".func main\n CALL f\n HALT\n.end\n.func f\n WORK 1\n.end\n"
WARN_ONLY = ".func main\n HALT\n.end\n.func orphan\n RET\n.end\n"


@pytest.fixture()
def profiled_fib(tmp_path):
    """fib's image and a fresh, matching gmon file."""
    src = PROGRAMS["fib"]()
    _, data = run_profiled(src, name="fib")
    gmon = tmp_path / "fib.gmon"
    write_gmon(data, str(gmon))
    return gmon


class TestExitCodes:
    def test_clean_program_exits_zero(self, capsys):
        assert check_main(["fib"]) == 0
        out = capsys.readouterr().out
        assert "no problems found" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_errors_exit_one(self, tmp_path, capsys):
        src = tmp_path / "broken.s"
        src.write_text(BROKEN)
        assert check_main([str(src)]) == 1
        assert "GP103" in capsys.readouterr().out

    def test_warnings_exit_zero_without_strict(self, tmp_path, capsys):
        src = tmp_path / "warn.s"
        src.write_text(WARN_ONLY)
        assert check_main([str(src)]) == 0
        assert "GP102" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        src = tmp_path / "warn.s"
        src.write_text(WARN_ONLY)
        assert check_main(["--strict", str(src)]) == 1

    def test_missing_target_is_usage_error(self, capsys):
        assert check_main([]) == 2
        assert "TARGET" in capsys.readouterr().err

    def test_unknown_target_is_usage_error(self, tmp_path, capsys):
        assert check_main([str(tmp_path / "nope.s")]) == 2
        assert "repro-check:" in capsys.readouterr().err


class TestJsonOutput:
    def test_json_is_deterministic(self, tmp_path, capsys):
        src = tmp_path / "broken.s"
        src.write_text(BROKEN)
        check_main(["--json", str(src)])
        first = capsys.readouterr().out
        check_main(["--json", str(src)])
        second = capsys.readouterr().out
        assert first == second

    def test_json_shape(self, tmp_path, capsys):
        src = tmp_path / "broken.s"
        src.write_text(BROKEN)
        check_main(["--json", str(src)])
        blob = json.loads(capsys.readouterr().out)
        assert blob["format"] == "repro-check-1"
        assert blob["summary"]["errors"] >= 1
        codes = [d["code"] for d in blob["diagnostics"]]
        assert codes == sorted(codes) or len(codes) > 1  # stable order
        assert "GP103" in codes

    def test_list_codes_covers_registry(self, capsys):
        assert check_main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in ("GP101", "GP201", "GP306"):
            assert code in out


class TestGmonValidation:
    def test_matching_gmon_is_clean(self, profiled_fib, capsys):
        assert check_main(["fib", str(profiled_fib)]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_corrupted_gmon_is_rejected(self, profiled_fib, tmp_path, capsys):
        data = read_gmon(str(profiled_fib))
        data.arcs[-1] = type(data.arcs[-1])(6, data.arcs[-1].self_pc, 1)
        bad = tmp_path / "bad.gmon"
        write_gmon(data, str(bad))
        assert check_main(["fib", str(bad)]) == 1
        assert "GP303" in capsys.readouterr().out

    def test_wrong_program_gmon_is_rejected(self, profiled_fib, capsys):
        # deep's gmon validated against fib's (smaller) image.
        src = PROGRAMS["deep"]()
        _, data = run_profiled(src, name="deep")
        gmon = profiled_fib.parent / "deep.gmon"
        write_gmon(data, str(gmon))
        rc = check_main(["fib", str(gmon)])
        assert rc == 1
        assert "GP3" in capsys.readouterr().out


class TestGprofLintFlag:
    def _materialize(self, tmp_path, src, name):
        exe = assemble(src, name=name, profile=True)
        _, data = run_profiled(src, name=name)
        image = tmp_path / f"{name}.vmexe"
        exe.save(str(image))
        gmon = tmp_path / f"{name}.gmon"
        write_gmon(data, str(gmon))
        return image, gmon

    def test_clean_profile_lints_silently(self, tmp_path, capsys):
        image, gmon = self._materialize(
            tmp_path, PROGRAMS["fib"](), "fib"
        )
        assert gprof_main(["--lint", str(image), str(gmon)]) == 0
        captured = capsys.readouterr()
        assert "repro-check" not in captured.err
        assert "call graph profile" in captured.out  # normal report ran

    def test_findings_go_to_stderr_and_report_continues(
        self, tmp_path, capsys
    ):
        image, gmon = self._materialize(
            tmp_path, PROGRAMS["fib"](), "fib"
        )
        data = read_gmon(str(gmon))
        data.arcs.append(type(data.arcs[0])(6, data.arcs[0].self_pc, 1))
        write_gmon(data, str(gmon))
        assert gprof_main(["--lint", str(image), str(gmon)]) == 0
        captured = capsys.readouterr()
        assert "GP303" in captured.err
        assert "call graph profile" in captured.out

    def test_lint_requires_vm_image(self, tmp_path, capsys):
        src = PROGRAMS["fib"]()
        exe = assemble(src, name="fib", profile=True)
        _, data = run_profiled(src, name="fib")
        table = tmp_path / "fib.sym"
        exe.symbol_table().save(str(table))
        gmon = tmp_path / "fib.gmon"
        write_gmon(data, str(gmon))
        assert gprof_main(["--lint", str(table), str(gmon)]) == 1
        assert "--lint" in capsys.readouterr().err


class TestFlowFlag:
    def test_flow_clean_on_canned_program(self, capsys):
        assert check_main(["--flow", "--strict", "fib"]) == 0
        assert "no problems found" in capsys.readouterr().out

    def test_flow_surfaces_gp6_findings(self, tmp_path, capsys):
        src = tmp_path / "const.s"
        src.write_text(
            ".func main\n PUSH 1\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
        )
        assert check_main(["--flow", str(src)]) == 0  # warnings only
        out = capsys.readouterr().out
        assert "GP601" in out and "GP605" in out
        # Without the flag the dataflow battery stays off.
        assert check_main([str(src)]) == 0
        assert "GP601" not in capsys.readouterr().out

    def test_flow_with_matching_gmon_stays_clean(self, profiled_fib, capsys):
        assert check_main(
            ["--flow", "--strict", "fib", str(profiled_fib)]
        ) == 0
        assert "no problems found" in capsys.readouterr().out


class TestGprofExpectFlag:
    def test_expect_annotates_flat_profile(self, tmp_path, capsys):
        src = PROGRAMS["fib"]()
        exe = assemble(src, name="fib", profile=True)
        _, data = run_profiled(src, name="fib")
        image = tmp_path / "fib.vmexe"
        exe.save(str(image))
        gmon = tmp_path / "fib.gmon"
        write_gmon(data, str(gmon))
        assert gprof_main(
            ["--expect", "--flat-only", str(image), str(gmon)]
        ) == 0
        captured = capsys.readouterr()
        assert "(±" in captured.out
        assert "GP6" not in captured.err  # healthy data: no findings

    def test_expect_requires_vm_image(self, tmp_path, capsys):
        src = PROGRAMS["fib"]()
        exe = assemble(src, name="fib", profile=True)
        _, data = run_profiled(src, name="fib")
        table = tmp_path / "fib.sym"
        exe.symbol_table().save(str(table))
        gmon = tmp_path / "fib.gmon"
        write_gmon(data, str(gmon))
        assert gprof_main(["--expect", str(table), str(gmon)]) == 1
        assert "--expect" in capsys.readouterr().err
