"""Crash recovery: kill -9 at any byte boundary, restart, byte-identity.

The acceptance property of the ingest service: after a crash at *any*
point — mid journal append, mid checkpoint write, between checkpoint
and journal truncation — a restart recovers merged state byte-identical
to an offline fold of exactly the acknowledged uploads.  These tests
drive :class:`TenantStore` directly with the fault-injection harness so
every byte offset is exercised deterministically.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.fleet import ProfileAccumulator
from repro.gmon import dumps_gmon, parse_gmon_raw
from repro.resilience import FaultInjector, InjectedFault
from repro.serve import Quarantine, ServeConfig
from repro.serve.journal import encode_frame, JournalRecord
from repro.serve.state import CHECKPOINT_NAME, JOURNAL_NAME, TenantStore

from tests.helpers import make_symbols, profile_data

SYMS = make_symbols("main", "work", "leaf")

BLOBS = [
    dumps_gmon(profile_data(
        SYMS,
        [("main", "work", i + 1), ("work", "leaf", 2 * i + 1)],
        {"main": i + 2, "work": 1},
    ))
    for i in range(6)
]


def offline_fold(blobs) -> bytes:
    """The reference: what repro-merge would produce from these inputs."""
    acc = ProfileAccumulator()
    for b in blobs:
        acc.add_raw(parse_gmon_raw(b))
    return dumps_gmon(acc.result())


def store_at(root, **overrides) -> TenantStore:
    config = ServeConfig(root=str(root), **overrides)
    return TenantStore.open("t1", config, Quarantine(config.quarantine_root()))


class TestJournalCrash:
    def test_kill_at_every_byte_of_an_append(self, tmp_path):
        """The exhaustive torn-append sweep.

        For every byte offset of the third upload's journal frame:
        accept two uploads, crash the third's append at that offset,
        restart, and require the merged state to equal the offline fold
        of the two acknowledged uploads — then require the retried third
        upload to land cleanly.
        """
        frame_len = len(encode_frame(JournalRecord(3, "k3", BLOBS[2])))
        acked_ref = offline_fold(BLOBS[:2])
        full_ref = offline_fold(BLOBS[:3])
        for kill_at in range(frame_len):
            root = tmp_path / f"kill{kill_at}"
            store = store_at(root, checkpoint_every=1000)
            store.accept(BLOBS[0], key="k1")
            store.accept(BLOBS[1], key="k2")
            with pytest.raises(InjectedFault):
                store.accept(BLOBS[2], key="k3",
                             injector=FaultInjector(kill_after=kill_at))
            store.close()  # the process is gone

            revived = store_at(root, checkpoint_every=1000)
            assert revived.merged() == acked_ref, f"kill at byte {kill_at}"
            assert revived.seq == 2
            # the un-acked upload is retried exactly as the agent would
            out = revived.accept(BLOBS[2], key="k3")
            assert out.status == "merged" and out.seq == 3
            assert revived.merged() == full_ref
            revived.close()

    def test_duplicate_keys_survive_crash(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=1000)
        store.accept(BLOBS[0], key="k1")
        with pytest.raises(InjectedFault):
            store.accept(BLOBS[1], key="k2",
                         injector=FaultInjector(kill_after=5))
        store.close()
        revived = store_at(tmp_path, checkpoint_every=1000)
        # k1 was acked before the crash: a retry dedups
        assert revived.accept(BLOBS[0], key="k1").status == "duplicate"
        # k2 was never acked: a retry merges
        assert revived.accept(BLOBS[1], key="k2").status == "merged"
        revived.close()

    def test_salvage_warnings_survive_crash(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=1000)
        store.accept(BLOBS[0])
        out = store.accept(BLOBS[1][:-10])  # salvaged, carries warnings
        assert out.salvaged and out.warnings
        store.close()
        revived = store_at(tmp_path, checkpoint_every=1000)
        data = revived.merged_data()
        assert any("salvage" in w for w in data.warnings)
        revived.close()


class TestCheckpointCrash:
    def test_kill_during_checkpoint_write_keeps_old_state(self, tmp_path):
        """Checkpoint is atomic: a crash mid-write changes nothing."""
        store = store_at(tmp_path, checkpoint_every=1000)
        for i, blob in enumerate(BLOBS[:3]):
            store.accept(blob, key=f"k{i}")
        store.checkpoint()  # baseline checkpoint covering 3 records
        store.accept(BLOBS[3], key="k3b")
        ref = offline_fold(BLOBS[:4])
        with pytest.raises(InjectedFault):
            store.checkpoint(injector=FaultInjector(kill_after=100))
        store.close()

        revived = store_at(tmp_path, checkpoint_every=1000)
        # old checkpoint + journal replay reconstruct the same state
        assert revived.merged() == ref
        assert revived.seq == 4
        revived.close()

    def test_crash_between_checkpoint_and_truncate(self, tmp_path):
        """Sequence numbers make the checkpoint/journal overlap safe."""
        store = store_at(tmp_path, checkpoint_every=1000)
        for i, blob in enumerate(BLOBS[:3]):
            store.accept(blob, key=f"k{i}")
        journal_path = os.path.join(store.dir, JOURNAL_NAME)
        with open(journal_path, "rb") as f:
            journal_before = f.read()
        store.checkpoint()
        store.close()
        # resurrect the pre-truncation journal: every record it holds is
        # now *also* inside the checkpoint
        with open(journal_path, "wb") as f:
            f.write(journal_before)

        revived = store_at(tmp_path, checkpoint_every=1000)
        # nothing double-counted: replay skipped the covered records
        assert revived.merged() == offline_fold(BLOBS[:3])
        assert revived.seq == 3
        revived.close()

    def test_corrupt_checkpoint_falls_back_to_journal(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=1000)
        store.accept(BLOBS[0], key="k0")
        store.checkpoint()
        store.accept(BLOBS[1], key="k1")  # journaled after the checkpoint
        store.close()
        ckpt_path = os.path.join(store.dir, CHECKPOINT_NAME)
        blob = bytearray(open(ckpt_path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(ckpt_path, "wb") as f:
            f.write(bytes(blob))

        revived = store_at(tmp_path, checkpoint_every=1000)
        # the checkpointed record is gone (it said so), the journaled one
        # survives, and the bad checkpoint is quarantined for forensics
        assert any("checkpoint did not verify" in w
                   for w in revived.recovery_warnings)
        assert revived.merged() == offline_fold([BLOBS[1]])
        assert revived.quarantine.count("t1") == 1
        revived.close()

    def test_automatic_checkpoint_compacts_journal(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=3)
        for i, blob in enumerate(BLOBS[:5]):
            store.accept(blob, key=f"k{i}")
        journal_size = os.path.getsize(os.path.join(store.dir, JOURNAL_NAME))
        store.close()
        # 3 records triggered a checkpoint; only 2 remain journaled
        assert journal_size < sum(len(b) for b in BLOBS[3:5]) + 200
        revived = store_at(tmp_path, checkpoint_every=3)
        assert revived.merged() == offline_fold(BLOBS[:5])
        assert revived.seq == 5
        # dedup state also spans the checkpoint boundary
        for i in range(5):
            assert revived.accept(BLOBS[i], key=f"k{i}").status == "duplicate"
        revived.close()


class TestRestartEquivalence:
    def test_many_restarts_one_answer(self, tmp_path):
        """Close/reopen after every upload: state never drifts."""
        for i, blob in enumerate(BLOBS):
            store = store_at(tmp_path, checkpoint_every=2)
            out = store.accept(blob, key=f"k{i}")
            assert out.status == "merged" and out.seq == i + 1
            store.close()
        final = store_at(tmp_path, checkpoint_every=2)
        assert final.merged() == offline_fold(BLOBS)
        final.close()

    def test_quarantined_uploads_never_enter_state(self, tmp_path):
        store = store_at(tmp_path, checkpoint_every=1000)
        store.accept(BLOBS[0])
        out = store.accept(b"gmon\x01\x00" + b"\xff" * 4)
        assert out.status == "quarantined"
        store.close()
        revived = store_at(tmp_path, checkpoint_every=1000)
        assert revived.merged() == offline_fold([BLOBS[0]])
        assert revived.quarantine.count("t1") == 1
        revived.close()

    def test_wiped_tenant_dir_starts_fresh(self, tmp_path):
        store = store_at(tmp_path)
        store.accept(BLOBS[0])
        store.close()
        shutil.rmtree(store.dir)
        fresh = store_at(tmp_path)
        assert fresh.seq == 0 and fresh.acc.empty
        fresh.close()
