"""Stage-isolation tests: each §4 pass honors its output contract.

Every stage gets a crafted :class:`PipelineState` and is run alone (or
up to its prerequisites); the assertions pin the contract the runner
and the cache rely on — including the §4 ordering constraint that
static augmentation precedes topological numbering.
"""

from __future__ import annotations

import pytest

from repro.core import AnalysisOptions, analyze
from repro.core.arcs import RawArc
from repro.pipeline import (
    GROUPS,
    STAGE_BY_NAME,
    STAGES,
    AnalysisCache,
    PipelineState,
    PipelineTrace,
    compute_keys,
    run_analysis,
)
from repro.pipeline.cache import (
    digest_histogram,
    digest_options,
    digest_raw_arcs,
    digest_symbols,
)

from tests.helpers import make_symbols, profile_data


def make_state(symbols, data, options=None) -> PipelineState:
    options = options or AnalysisOptions()
    return PipelineState(symbols=symbols, data=data, options=options,
                         warnings=list(data.warnings))


def run_until(state: PipelineState, last: str) -> None:
    """Run stages from the start through ``last`` (inclusive)."""
    for stage in STAGES:
        stage.run(state, {})
        if stage.name == last:
            return
    raise AssertionError(f"no stage named {last}")


@pytest.fixture()
def simple():
    symbols = make_symbols("main", "work", "leaf")
    data = profile_data(
        symbols,
        [("<spontaneous>", "main", 1), ("main", "work", 5),
         ("work", "leaf", 10)],
        ticks={"main": 2, "work": 6, "leaf": 2},
    )
    return symbols, data


# -- registry coherence ----------------------------------------------------


def test_registry_names_are_unique_and_ordered():
    names = [s.name for s in STAGES]
    assert len(names) == len(set(names))
    assert names == [
        "symbolize", "exclude", "apportion", "build-graph", "augment",
        "break-cycles", "number", "propagate", "assemble",
    ]
    assert set(STAGE_BY_NAME) == set(names)


def test_registry_dependencies_are_satisfied_in_order():
    """Every stage's ``requires`` is provided by an earlier stage."""
    provided: set[str] = set()
    for stage in STAGES:
        missing = set(stage.requires) - provided
        assert not missing, f"{stage.name} requires unprovided {missing}"
        provided |= set(stage.provides)


def test_augment_precedes_numbering():
    """§4: static arcs can complete cycles, so augmentation must come
    before topological numbering (and numbering before propagation)."""
    names = [s.name for s in STAGES]
    assert names.index("augment") < names.index("number")
    assert names.index("number") < names.index("propagate")


def test_cache_groups_partition_the_stage_list():
    covered = [name for group in GROUPS for name in group.stages]
    assert covered == [s.name for s in STAGES]


# -- individual stage contracts --------------------------------------------


def test_symbolize_resolves_arcs(simple):
    symbols, data = simple
    state = make_state(symbols, data)
    counters: dict[str, int] = {}
    STAGE_BY_NAME["symbolize"].run(state, counters)
    pairs = {(a.caller, a.callee) for a in state.symbolized}
    assert ("main", "work") in pairs and ("work", "leaf") in pairs
    assert counters["raw_arcs"] == 3
    assert counters["unknown_dropped"] == 0


def test_symbolize_warns_on_unknown_callees(simple):
    symbols, data = simple
    data.arcs.append(RawArc(4, 10_000_000, 3))  # callee outside the image
    state = make_state(symbols, data)
    counters: dict[str, int] = {}
    STAGE_BY_NAME["symbolize"].run(state, counters)
    assert counters["unknown_dropped"] == 1
    assert any("matches no symbol" in w for w in state.warnings)


def test_exclude_drops_arcs_touching_excluded_routines(simple):
    symbols, data = simple
    state = make_state(symbols, data, AnalysisOptions(excluded=["leaf"]))
    run_until(state, "exclude")
    names = {a.caller for a in state.arcs} | {a.callee for a in state.arcs}
    assert "leaf" not in names


def test_exclude_warns_on_unmatched_names(simple):
    """Satellite: a typo'd -E name must not be silently ignored."""
    symbols, data = simple
    state = make_state(
        symbols, data, AnalysisOptions(excluded=["no_such_routine"])
    )
    counters: dict[str, int] = {}
    STAGE_BY_NAME["symbolize"].run(state, {})
    STAGE_BY_NAME["exclude"].run(state, counters)
    assert counters["unmatched_names"] == 1
    assert any("no_such_routine" in w for w in state.warnings)
    # ...and the warning reaches the assembled profile.
    profile = analyze(
        data, symbols, AnalysisOptions(excluded=["no_such_routine"])
    )
    assert any("no_such_routine" in w for w in profile.warnings)
    assert profile.degraded


def test_exclude_accepts_valid_names_silently(simple):
    symbols, data = simple
    profile = analyze(data, symbols, AnalysisOptions(excluded=["leaf"]))
    assert not any("leaf" in w for w in profile.warnings)


def test_apportion_excludes_and_counts(simple):
    symbols, data = simple
    state = make_state(symbols, data, AnalysisOptions(excluded=["work"]))
    counters: dict[str, int] = {}
    STAGE_BY_NAME["apportion"].run(state, counters)
    assert "work" not in state.self_times
    assert counters["routines_sampled"] == len(state.self_times)
    assert state.self_times["main"] > 0


def test_build_graph_includes_sampled_only_routines(simple):
    symbols, data = simple
    state = make_state(symbols, data)
    run_until(state, "build-graph")
    assert set(state.graph.nodes()) >= {"main", "work", "leaf"}


def test_augment_adds_static_arcs_before_numbering(simple):
    symbols, data = simple
    state = make_state(
        symbols, data, AnalysisOptions(static_arcs=[("leaf", "main")])
    )
    run_until(state, "number")
    # The static back-edge completes a cycle spanning all three
    # routines; numbering after augmentation must see it.
    assert len(state.numbered.cycles) == 1
    assert set(state.numbered.cycles[0].members) == {"main", "work", "leaf"}


def test_break_cycles_warns_on_unmatched_deleted_arcs(simple):
    """Satellite: deleting an arc the graph never had is reported."""
    symbols, data = simple
    state = make_state(
        symbols, data, AnalysisOptions(deleted_arcs=[("leaf", "main")])
    )
    counters: dict[str, int] = {}
    run_until(state, "build-graph")
    STAGE_BY_NAME["augment"].run(state, {})
    STAGE_BY_NAME["break-cycles"].run(state, counters)
    assert counters["unmatched_requests"] == 1
    assert counters["removed_explicit"] == 0
    assert any("leaf/main" in w for w in state.warnings)
    profile = analyze(
        data, symbols, AnalysisOptions(deleted_arcs=[("leaf", "main")])
    )
    assert any("leaf/main" in w for w in profile.warnings)


def test_break_cycles_removes_matching_arcs_silently(simple):
    symbols, data = simple
    profile = analyze(
        data, symbols, AnalysisOptions(deleted_arcs=[("work", "leaf")])
    )
    assert [(r.caller, r.callee) for r in profile.removed_arcs] == [
        ("work", "leaf")
    ]
    assert not any("work/leaf" in w for w in profile.warnings)


def test_propagate_and_assemble_contracts(simple):
    symbols, data = simple
    state = make_state(symbols, data)
    run_until(state, "assemble")
    assert state.prop.total_program_time > 0
    assert state.profile is not None
    assert state.profile.total_seconds == state.prop.total_program_time
    assert state.profile.warnings == state.warnings


# -- digests and cache keys -------------------------------------------------


def test_digest_symbols_is_content_addressed():
    a = make_symbols("main", "work")
    b = make_symbols("main", "work")
    c = make_symbols("main", "other")
    assert digest_symbols(a) == digest_symbols(b)
    assert digest_symbols(a) != digest_symbols(c)
    # Memoized on the instance after the first computation.
    assert a._pipeline_digest == digest_symbols(a)


def test_digest_covers_every_input(simple):
    symbols, data = simple
    base = digest_raw_arcs(data)
    data.arcs[-1] = RawArc(
        data.arcs[-1].from_pc, data.arcs[-1].self_pc,
        data.arcs[-1].count + 1,
    )
    assert digest_raw_arcs(data) != base

    hist_base = digest_histogram(data.histogram)
    data.histogram.counts[0] += 1
    assert digest_histogram(data.histogram) != hist_base


def test_digest_options_is_order_sensitive():
    """Arc/exclusion order can break presentation ties, so option
    sequences are digested in the order given, not sorted."""
    a = AnalysisOptions(excluded=["x", "y"])
    b = AnalysisOptions(excluded=["y", "x"])
    assert digest_options(a) != digest_options(b)


def test_compute_keys_change_with_their_inputs(simple):
    symbols, data = simple
    base = compute_keys(make_state(symbols, data))
    assert set(base) == {
        "arcs", "spans", "self_times", "numbered", "prop", "profile",
    }

    excl = compute_keys(
        make_state(symbols, data, AnalysisOptions(excluded=["leaf"]))
    )
    assert excl["arcs"] != base["arcs"]
    assert excl["profile"] != base["profile"]

    # deleted_arcs leaves the early groups' keys alone (partial reuse).
    deleted = compute_keys(
        make_state(
            symbols, data, AnalysisOptions(deleted_arcs=[("work", "leaf")])
        )
    )
    assert deleted["arcs"] == base["arcs"]
    assert deleted["self_times"] == base["self_times"]
    assert deleted["numbered"] != base["numbered"]
    assert deleted["profile"] != base["profile"]


def test_cache_lru_eviction_and_stats():
    cache = AnalysisCache(max_entries=2)
    cache.put("arcs", "k1", 1)
    cache.put("arcs", "k2", 2)
    assert cache.get("arcs", "k1") == 1  # refresh k1
    cache.put("arcs", "k3", 3)  # evicts k2
    assert cache.get("arcs", "k2") is None
    assert cache.get("arcs", "k1") == 1
    assert cache.get("arcs", "k3") == 3
    assert cache.stats() == {"entries": 2, "hits": 3, "misses": 1}


def test_partial_cache_reuse_on_option_edit(simple):
    """Changing deleted_arcs hits the early groups, re-runs the rest."""
    symbols, data = simple
    cache = AnalysisCache()
    run_analysis(data, symbols, AnalysisOptions(), cache=cache)
    trace = PipelineTrace()
    run_analysis(
        data, symbols, AnalysisOptions(deleted_arcs=[("work", "leaf")]),
        trace=trace, cache=cache,
    )
    cached = {s.name for s in trace.stages if s.cached}
    recomputed = {s.name for s in trace.stages if not s.cached}
    assert cached == {"symbolize", "exclude", "apportion"}
    assert recomputed == {
        "build-graph", "augment", "break-cycles", "number", "propagate",
        "assemble",
    }


def test_warm_run_replays_warnings(simple):
    """Cached groups must re-emit the warnings the cold run collected."""
    symbols, data = simple
    options = AnalysisOptions(excluded=["no_such_routine"])
    cache = AnalysisCache()
    cold = run_analysis(data, symbols, options, cache=cache)
    warm = run_analysis(data, symbols, options, cache=cache)
    assert warm.warnings == cold.warnings
    assert any("no_such_routine" in w for w in warm.warnings)
