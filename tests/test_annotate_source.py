"""Tests for Python annotated-source listings and the mcount ablation
table (the §3.1 alternative organization)."""

import textwrap
from collections import Counter

import pytest

from repro.errors import ProfilerError
from repro.machine.mcount import ArcTable, CalleeKeyedArcTable
from repro.pyprof import Profiler, format_annotated_source, hottest_lines


class TestAnnotatedSource:
    def _listing(self, tmp_path, ticks):
        src = tmp_path / "mod.py"
        src.write_text(
            textwrap.dedent(
                """\
                def hot():
                    x = 1
                    return x

                def cold():
                    return 0
                """
            )
        )
        counts = Counter(
            {(str(src), line): n for line, n in ticks.items()}
        )
        return src, format_annotated_source(str(src), counts, profrate=100)

    def test_counts_in_margin(self, tmp_path):
        _, text = self._listing(tmp_path, {2: 80, 3: 20})
        hot_line = next(l for l in text.splitlines() if "x = 1" in l)
        assert "80" in hot_line
        assert "|################" in hot_line
        cold_line = next(l for l in text.splitlines() if "return 0" in l)
        assert cold_line.strip().startswith("6")  # empty gutter

    def test_seconds_column(self, tmp_path):
        _, text = self._listing(tmp_path, {2: 50})
        assert "0.500s" in text

    def test_no_samples_notice(self, tmp_path):
        src = tmp_path / "mod.py"
        src.write_text("pass\n")
        assert "no samples" in format_annotated_source(str(src), Counter())

    def test_hottest_lines(self):
        counts = Counter({("a.py", 3): 9, ("b.py", 1): 5, ("a.py", 7): 1})
        assert hottest_lines(counts, top=2) == [("a.py", 3, 9), ("b.py", 1, 5)]

    def test_end_to_end_sampled_lines(self, tmp_path):
        import time

        def spin():
            deadline = time.process_time() + 0.05
            total = 0
            while time.process_time() < deadline:
                total += 1  # the hot line
            return total

        profiler = Profiler(mode="thread", interval=0.002, record_lines=True)
        with profiler:
            spin()
        assert profiler.line_ticks
        (filename, lineno, ticks) = hottest_lines(profiler.line_ticks, top=1)[0]
        assert filename == __file__
        text = format_annotated_source(__file__, profiler.line_ticks)
        assert "annotated source" in text

    def test_record_lines_requires_sampling(self):
        with pytest.raises(ProfilerError, match="sampling"):
            Profiler(mode="exact", record_lines=True)


class TestCalleeKeyedTable:
    def test_same_arcs_either_organization(self):
        events = [(4 * s, 100 * (s % 3)) for s in range(30)] * 3
        a, b = ArcTable(), CalleeKeyedArcTable()
        for from_pc, self_pc in events:
            a.record(from_pc, self_pc)
            b.record(from_pc, self_pc)
        assert a.arcs() == b.arcs()
        assert len(a) == len(b)

    def test_fan_in_probes_grow(self):
        t = CalleeKeyedArcTable()
        for site in range(20):
            t.record(1000 + 4 * site, 8)
        # the 20th site probed the whole chain
        assert t.stats.probes > 20
        assert t.stats.collisions > 0

    def test_spontaneous_and_reset(self):
        t = CalleeKeyedArcTable()
        t.record(None, 8)
        assert t.stats.spontaneous == 1
        t.reset()
        assert t.arcs() == []
        assert t.stats.lookups == 1
