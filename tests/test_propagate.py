"""Tests for the time-propagation recurrence (§4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arcs import Arc
from repro.core.callgraph import CallGraph
from repro.core.cycles import number_graph
from repro.core.propagate import propagate
from repro.core.symbols import SPONTANEOUS

from tests.helpers import graph_from_edges


def run(graph, self_times):
    return propagate(number_graph(graph), self_times)


class TestLinearChains:
    def test_single_node(self):
        g = CallGraph(extra_nodes=["main"])
        p = run(g, {"main": 2.0})
        assert p.total_time["main"] == 2.0
        assert p.total_program_time == 2.0

    def test_child_time_flows_to_parent(self):
        g = graph_from_edges(("main", "f", 1))
        p = run(g, {"main": 1.0, "f": 3.0})
        assert p.total_time["f"] == 3.0
        assert p.child_time["main"] == 3.0
        assert p.total_time["main"] == 4.0

    def test_three_level_chain(self):
        g = graph_from_edges(("a", "b", 1), ("b", "c", 1))
        p = run(g, {"a": 1.0, "b": 2.0, "c": 4.0})
        assert p.total_time["c"] == 4.0
        assert p.total_time["b"] == 6.0
        assert p.total_time["a"] == 7.0

    def test_arc_share_components(self):
        g = graph_from_edges(("main", "f", 1), ("f", "g", 1))
        p = run(g, {"f": 2.0, "g": 6.0})
        share = p.arc_shares[("main", "f")]
        assert share.self_share == pytest.approx(2.0)
        assert share.child_share == pytest.approx(6.0)
        assert share.total == pytest.approx(8.0)


class TestProportionalSharing:
    def test_callers_share_by_call_count(self):
        # The Figure 4 arithmetic: 4/10 and 6/10 of EXAMPLE's time.
        g = graph_from_edges(("c1", "e", 4), ("c2", "e", 6))
        p = run(g, {"e": 5.0})
        assert p.arc_shares[("c1", "e")].self_share == pytest.approx(2.0)
        assert p.arc_shares[("c2", "e")].self_share == pytest.approx(3.0)
        assert p.total_time["c1"] == pytest.approx(2.0)
        assert p.total_time["c2"] == pytest.approx(3.0)

    def test_diamond_conserves_time(self):
        g = graph_from_edges(
            ("main", "l", 1), ("main", "r", 3), ("l", "leaf", 2), ("r", "leaf", 2)
        )
        p = run(g, {"leaf": 8.0, "l": 1.0, "r": 1.0})
        assert p.total_time["main"] == pytest.approx(10.0)
        # leaf's time split half and half between l and r.
        assert p.arc_shares[("l", "leaf")].self_share == pytest.approx(4.0)
        assert p.arc_shares[("r", "leaf")].self_share == pytest.approx(4.0)

    def test_spontaneous_calls_dilute_shares(self):
        # 3 identified calls + 1 spontaneous: parent gets 3/4.
        g = CallGraph([Arc("a", "f", 3), Arc(SPONTANEOUS, "f", 1)])
        p = run(g, {"f": 4.0})
        assert p.arc_shares[("a", "f")].self_share == pytest.approx(3.0)
        assert p.total_time["a"] == pytest.approx(3.0)

    def test_static_arcs_propagate_nothing(self):
        g = CallGraph([Arc("a", "f", 0, static=True), Arc("b", "f", 2)])
        p = run(g, {"f": 4.0})
        assert ("a", "f") not in p.arc_shares
        assert p.total_time["a"] == 0.0
        assert p.total_time["b"] == pytest.approx(4.0)

    def test_never_called_node_keeps_time(self):
        g = CallGraph(extra_nodes=["main"])
        g.add_arc(Arc("main", "f", 1))
        p = run(g, {"main": 5.0, "f": 1.0})
        assert p.ncalls["main"] == 0
        assert p.total_time["main"] == pytest.approx(6.0)


class TestSelfRecursion:
    def test_self_arc_propagates_nothing(self):
        # §4: "The arcs from a routine to itself are of interest, but do
        # not participate in time propagation."
        g = graph_from_edges(("main", "f", 10), ("f", "f", 4))
        p = run(g, {"f": 5.0})
        assert p.ncalls["f"] == 10
        assert p.self_calls["f"] == 4
        assert ("f", "f") not in p.arc_shares
        # main gets all of f's time: 10/10.
        assert p.total_time["main"] == pytest.approx(5.0)


class TestCycles:
    def test_cycle_time_shared_by_external_callers(self):
        # a and b form a cycle; two external callers split its total.
        g = graph_from_edges(
            ("p1", "a", 1), ("p2", "a", 3), ("a", "b", 7), ("b", "a", 7)
        )
        p = run(g, {"a": 2.0, "b": 6.0})
        numbered = p.numbered
        cyc = numbered.cycles[0].name
        assert p.self_time[cyc] == pytest.approx(8.0)
        assert p.ncalls[cyc] == 4
        assert p.self_calls[cyc] == 14
        assert p.arc_shares[("p1", "a")].self_share == pytest.approx(2.0)
        assert p.arc_shares[("p2", "a")].self_share == pytest.approx(6.0)

    def test_intra_cycle_arcs_propagate_nothing(self):
        g = graph_from_edges(("m", "a", 1), ("a", "b", 5), ("b", "a", 5))
        p = run(g, {"a": 1.0, "b": 1.0})
        assert ("a", "b") not in p.arc_shares
        assert ("b", "a") not in p.arc_shares
        assert p.total_time["m"] == pytest.approx(2.0)

    def test_cycle_children_propagate_into_cycle(self):
        # A leaf called from inside the cycle passes time to the cycle,
        # which passes it on to external callers.
        g = graph_from_edges(
            ("m", "a", 2), ("a", "b", 3), ("b", "a", 3), ("b", "leaf", 4)
        )
        p = run(g, {"a": 1.0, "b": 1.0, "leaf": 6.0})
        cyc = p.numbered.cycles[0].name
        assert p.child_time[cyc] == pytest.approx(6.0)
        assert p.total_time["m"] == pytest.approx(8.0)
        # member-level attribution: b called leaf, so b's routine_child
        # holds leaf's contribution.
        assert p.routine_child["b"] == pytest.approx(6.0)
        assert p.routine_child["a"] == pytest.approx(0.0)

    def test_figure_2_3_structure(self):
        # The Figure 2 graph: 1→{2,3}, 2→{4,5}, 3→{6,7} plus the mutual
        # recursion 3↔7 added in Figure 2; 7→9, 6→8, 4→8 (a plausible
        # reading of the figures; what matters is the collapse).
        g = graph_from_edges(
            ("n1", "n2"), ("n1", "n3"), ("n2", "n4"), ("n2", "n5"),
            ("n3", "n6"), ("n3", "n7"), ("n7", "n3"), ("n6", "n8"),
            ("n7", "n9"), ("n4", "n8"),
        )
        numbered = number_graph(g)
        assert len(numbered.cycles) == 1
        assert set(numbered.cycles[0].members) == {"n3", "n7"}
        p = propagate(numbered, {f"n{i}": 1.0 for i in range(1, 10)})
        assert p.total_time["n1"] == pytest.approx(9.0)


class TestConservation:
    def test_root_collects_everything_in_a_tree(self):
        g = graph_from_edges(
            ("main", "a", 2), ("main", "b", 1), ("a", "c", 4), ("b", "c", 4)
        )
        times = {"main": 1.0, "a": 2.0, "b": 3.0, "c": 8.0}
        p = run(g, times)
        assert p.total_time["main"] == pytest.approx(sum(times.values()))
        assert p.total_program_time == pytest.approx(sum(times.values()))


@settings(max_examples=50)
@given(
    st.integers(min_value=2, max_value=10),
    st.data(),
)
def test_random_dag_root_conservation(n, data):
    """Property: on a random single-root DAG where every node is
    reachable from the root, the root's total equals the sum of all
    self times (nothing leaks, nothing is double-counted)."""
    edges = []
    for child in range(1, n):
        parents = data.draw(
            st.lists(
                st.integers(0, child - 1), min_size=1, max_size=3, unique=True
            )
        )
        for parent in parents:
            count = data.draw(st.integers(1, 5))
            edges.append((f"n{parent}", f"n{child}", count))
    g = graph_from_edges(*edges)
    times = {f"n{i}": float(i + 1) for i in range(n)}
    p = run(g, times)
    assert p.total_time["n0"] == pytest.approx(sum(times.values()))


@settings(max_examples=50)
@given(st.data())
def test_random_graph_no_time_inflation(data):
    """Property: on arbitrary graphs (cycles included), no node's total
    exceeds the program total, and totals are non-negative."""
    n = data.draw(st.integers(2, 9))
    m = data.draw(st.integers(1, 25))
    edges = [
        (
            f"n{data.draw(st.integers(0, n - 1))}",
            f"n{data.draw(st.integers(0, n - 1))}",
            data.draw(st.integers(0, 4)),
        )
        for _ in range(m)
    ]
    g = graph_from_edges(*edges)
    times = {node: float(data.draw(st.integers(0, 10))) for node in g.nodes()}
    p = run(g, times)
    total = p.total_program_time
    for rep in p.numbered.topo_order:
        assert -1e-9 <= p.total_time[rep] <= total + 1e-9
