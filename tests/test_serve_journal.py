"""The write-ahead journal: framing, replay, and crash behavior.

The contract under test: for *any* prefix of journal bytes — every
truncation point, plus bit flips and injected mid-write kills — replay
never raises, recovers exactly the frames that were completely and
correctly written, and reports a truncation point that cuts the debris
without touching a valid frame.
"""

from __future__ import annotations

import os

import pytest

from repro.resilience import FaultInjector, InjectedFault
from repro.resilience.faults import all_truncations, random_bit_flips
from repro.serve.journal import (
    FRAME_MAGIC,
    JournalRecord,
    JournalWriter,
    encode_frame,
    iter_frames,
    replay_journal,
)


def rec(seq: int, key: str = "", blob: bytes = b"payload",
        warnings: tuple[str, ...] = ()) -> JournalRecord:
    return JournalRecord(seq=seq, key=key, blob=blob, warnings=warnings)


class TestRecordCodec:
    def test_roundtrip_plain(self):
        r = rec(7, key="abc", blob=b"\x00\x01binary\xff")
        assert JournalRecord.decode(r.encode()) == r

    def test_roundtrip_warnings(self):
        r = rec(1, blob=b"x", warnings=("first warning", "second — unicode"))
        assert JournalRecord.decode(r.encode()) == r

    def test_roundtrip_empty_blob_and_key(self):
        r = rec(0, key="", blob=b"")
        assert JournalRecord.decode(r.encode()) == r

    def test_decode_rejects_short_payload(self):
        with pytest.raises(ValueError):
            JournalRecord.decode(b"\x01\x00")

    def test_decode_rejects_unknown_type(self):
        payload = bytearray(rec(1).encode())
        payload[0] = 99
        with pytest.raises(ValueError, match="unknown record type"):
            JournalRecord.decode(bytes(payload))

    def test_decode_rejects_truncated_key(self):
        r = rec(1, key="a-very-long-idempotency-key")
        payload = r.encode()
        # cut inside the key field
        with pytest.raises(ValueError):
            JournalRecord.decode(payload[:13])


class TestReplay:
    def journal_bytes(self, n: int = 4) -> tuple[bytes, list[JournalRecord]]:
        records = [rec(i + 1, key=f"k{i}", blob=bytes([i]) * (10 + i),
                       warnings=("w",) if i % 2 else ())
                   for i in range(n)]
        return b"".join(encode_frame(r) for r in records), records

    def test_clean_replay(self, tmp_path):
        blob, records = self.journal_bytes()
        path = tmp_path / "journal.log"
        path.write_bytes(blob)
        out, report = replay_journal(path)
        assert out == records
        assert report.clean
        assert report.consumed_bytes == len(blob)
        assert report.frames == len(records)

    def test_missing_file_is_empty(self, tmp_path):
        out, report = replay_journal(tmp_path / "nope.log")
        assert out == []
        assert report.clean and report.total_bytes == 0

    def test_every_truncation_recovers_maximal_prefix(self, tmp_path):
        """The core crash-consistency property, exhaustively."""
        blob, records = self.journal_bytes(3)
        frames = [encode_frame(r) for r in records]
        boundaries = [0]
        for f in frames:
            boundaries.append(boundaries[-1] + len(f))
        path = tmp_path / "journal.log"
        for cut, mutated in all_truncations(blob):
            path.write_bytes(mutated)
            out, report = replay_journal(path)
            # the largest boundary <= cut is exactly what must survive
            expect_frames = max(
                i for i, b in enumerate(boundaries) if b <= cut
            )
            assert len(out) == expect_frames, f"cut at {cut}"
            assert out == records[:expect_frames]
            assert report.consumed_bytes == boundaries[expect_frames]
            assert report.clean == (cut in boundaries)

    def test_bit_flips_never_raise_never_lie(self, tmp_path):
        blob, records = self.journal_bytes(3)
        path = tmp_path / "journal.log"
        for _offset, _bit, mutated in random_bit_flips(blob, 200, seed=42):
            path.write_bytes(mutated)
            out, report = replay_journal(path)  # must not raise
            # every surviving record must be one we actually wrote:
            # a flip may cut the prefix short but never invent data
            for r in out:
                assert r in records
            assert report.consumed_bytes <= len(mutated)

    def test_garbage_after_valid_prefix(self, tmp_path):
        blob, records = self.journal_bytes(2)
        path = tmp_path / "journal.log"
        path.write_bytes(blob + b"\x00" * 37)
        out, report = replay_journal(path)
        assert out == records
        assert not report.clean
        assert report.consumed_bytes == len(blob)
        assert "magic" in report.torn_reason or "header" in report.torn_reason

    def test_impossible_length_stops_replay(self, tmp_path):
        frame = encode_frame(rec(1))
        bad = FRAME_MAGIC + (0xFFFFFFFF).to_bytes(4, "little") + b"x" * 8
        path = tmp_path / "journal.log"
        path.write_bytes(frame + bad)
        out, report = replay_journal(path)
        assert len(out) == 1
        assert "impossible frame length" in report.torn_reason

    def test_iter_frames_matches_replay(self, tmp_path):
        blob, records = self.journal_bytes(4)
        payloads = [p for _, p in iter_frames(blob)]
        assert [JournalRecord.decode(p) for p in payloads] == records


class TestWriter:
    def test_append_then_replay(self, tmp_path):
        path = tmp_path / "journal.log"
        w = JournalWriter(path)
        offsets = [w.append(rec(i + 1, blob=b"b" * i)) for i in range(5)]
        w.close()
        assert offsets[0] == 0 and offsets == sorted(offsets)
        out, report = replay_journal(path)
        assert [r.seq for r in out] == [1, 2, 3, 4, 5]
        assert report.clean

    def test_append_survives_reopen(self, tmp_path):
        path = tmp_path / "journal.log"
        w1 = JournalWriter(path)
        w1.append(rec(1))
        w1.close()
        w2 = JournalWriter(path)
        off = w2.append(rec(2))
        w2.close()
        assert off > 0  # appended after the existing frame, not over it
        out, _ = replay_journal(path)
        assert [r.seq for r in out] == [1, 2]

    def test_truncate_compacts(self, tmp_path):
        path = tmp_path / "journal.log"
        w = JournalWriter(path)
        w.append(rec(1))
        w.truncate(0)
        w.append(rec(2))
        w.close()
        out, _ = replay_journal(path)
        assert [r.seq for r in out] == [2]

    def test_injected_kill_mid_frame(self, tmp_path):
        """A crash mid-append loses only the frame being written."""
        path = tmp_path / "journal.log"
        w = JournalWriter(path)
        w.append(rec(1))
        frame2 = encode_frame(rec(2))
        for kill_at in range(len(frame2)):
            injector = FaultInjector(kill_after=kill_at)
            with pytest.raises(InjectedFault):
                w.append(rec(2), injector)
            w.close()  # the "process" died; reopen like a restart
            out, report = replay_journal(path)
            assert [r.seq for r in out] == [1], f"kill at byte {kill_at}"
            # recovery truncates the debris so the journal appends clean
            w = JournalWriter(path)
            if not report.clean:
                w.truncate(report.consumed_bytes)
        w.append(rec(2))
        w.close()
        out, report = replay_journal(path)
        assert [r.seq for r in out] == [1, 2] and report.clean

    def test_torn_write_without_crash(self, tmp_path):
        """A silently-short write (no exception) still replays safely."""
        path = tmp_path / "journal.log"
        w = JournalWriter(path)
        w.append(rec(1))
        w.append(rec(2), FaultInjector(truncate_at=9))
        w.close()
        out, report = replay_journal(path)
        assert [r.seq for r in out] == [1]
        assert not report.clean
