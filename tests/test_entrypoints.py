"""Every CLI is reachable both as ``python -m`` and as a console script."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent

CLI_MODULES = {
    "repro-gprof": "repro.cli.gprof_cli",
    "repro-prof": "repro.cli.prof_cli",
    "repro-kgmon": "repro.cli.kgmon_cli",
    "repro-vm": "repro.cli.vm_cli",
    "repro-stacks": "repro.cli.stacks_cli",
    "repro-check": "repro.cli.check_cli",
    "repro-merge": "repro.cli.merge_cli",
    "repro-pgo": "repro.cli.pgo_cli",
}


def _env_with_src():
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


@pytest.mark.parametrize("module", sorted(CLI_MODULES.values()))
def test_python_dash_m_help_works(module):
    result = subprocess.run(
        [sys.executable, "-m", module, "--help"],
        env=_env_with_src(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert "usage:" in result.stdout


@pytest.mark.parametrize("script,module", sorted(CLI_MODULES.items()))
def test_console_script_is_declared(script, module):
    pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert f'{script} = "{module}:main"' in pyproject


@pytest.mark.parametrize("module", sorted(CLI_MODULES.values()))
def test_module_main_returns_exit_status(module):
    """Each CLI exposes main(argv) returning an int (the script target)."""
    import importlib

    mod = importlib.import_module(module)
    assert callable(mod.main)
