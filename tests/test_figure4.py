"""Reproduction of Figure 4: the profile entry for EXAMPLE.

§5.2 gives every number in the entry; we reconstruct a program whose
profile data yields exactly those numbers and assert the analysis
reproduces the figure:

* EXAMPLE: self 0.50s, descendants 3.00s, %time 41.5, called 10+4;
* parents: CALLER1 0.20/1.20 at 4/10, CALLER2 0.30/1.80 at 6/10;
* children: SUB1 <cycle1> 1.50/1.00 at 20/40 (cycle totals!),
  SUB2 0.00/0.50 at 1/5, SUB3 0.00/0.00 at 0/5.

The workload behind those numbers: EXAMPLE is called 4 and 6 times by
the two callers and 4 times by itself; it calls into cycle 1 (SUB1↔SUB4)
20 of the cycle's 40 external calls, calls SUB2 1 of its 5 calls, and
has a static-only arc to SUB3.  The program's total sampled time is
506 ticks at 60 Hz = 8.433s, making EXAMPLE's 3.50s exactly 41.5%.
"""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.report import format_entry, format_graph_profile

from tests.helpers import make_symbols, profile_data

NAMES = (
    "MAIN",
    "CALLER1",
    "CALLER2",
    "EXAMPLE",
    "SUB1",
    "SUB2",
    "SUB3",
    "SUB4",
    "SUBLEAF",
    "SUB2LEAF",
    "OTHER",
)


def figure4_profile():
    symbols = make_symbols(*NAMES)
    arcs = [
        ("<spontaneous>", "MAIN", 1),
        ("MAIN", "CALLER1", 1),
        ("MAIN", "CALLER2", 1),
        ("MAIN", "OTHER", 1),
        ("CALLER1", "EXAMPLE", 4),
        ("CALLER2", "EXAMPLE", 6),
        ("EXAMPLE", "EXAMPLE", 4),       # the "+4" self-recursion
        ("EXAMPLE", "SUB1", 20),         # 20 of the cycle's 40 calls
        ("OTHER", "SUB1", 20),           # the other 20
        ("SUB1", "SUB4", 7),             # cycle 1: SUB1 <-> SUB4
        ("SUB4", "SUB1", 7),
        ("SUB1", "SUBLEAF", 40),         # the cycle's descendant
        ("EXAMPLE", "SUB2", 1),          # 1 of SUB2's 5 calls
        ("OTHER", "SUB2", 4),
        ("SUB2", "SUB2LEAF", 5),
        ("OTHER", "SUB3", 5),            # SUB3's dynamic calls
    ]
    ticks = {
        "EXAMPLE": 30,    # 0.50s
        "SUB1": 180,      # 3.00s → the cycle's self time
        "SUBLEAF": 120,   # 2.00s → the cycle's descendants time
        "SUB2LEAF": 150,  # 2.50s → SUB2's descendants time
        "MAIN": 6,        # 0.10s of filler so totals hit 506 ticks
        "OTHER": 20,      # 0.33s
    }
    assert sum(ticks.values()) == 506
    data = profile_data(symbols, arcs, ticks)
    options = AnalysisOptions(static_arcs=[("EXAMPLE", "SUB3")])
    return analyze(data, symbols, options)


@pytest.fixture(scope="module")
def profile():
    return figure4_profile()


class TestPrimaryLine:
    def test_self_seconds(self, profile):
        entry = profile.entry("EXAMPLE")
        assert entry.self_seconds == pytest.approx(0.50)

    def test_descendants_seconds(self, profile):
        assert profile.entry("EXAMPLE").child_seconds == pytest.approx(3.00)

    def test_percent_time(self, profile):
        assert profile.entry("EXAMPLE").percent == pytest.approx(41.5, abs=0.05)

    def test_called_plus_self(self, profile):
        entry = profile.entry("EXAMPLE")
        assert entry.ncalls == 10
        assert entry.self_calls == 4


class TestParents:
    def test_two_parents_sorted_by_propagated_time(self, profile):
        parents = profile.entry("EXAMPLE").parents
        assert [p.name for p in parents] == ["CALLER2", "CALLER1"]

    def test_caller1_shares(self, profile):
        p = next(
            p for p in profile.entry("EXAMPLE").parents if p.name == "CALLER1"
        )
        assert p.self_share == pytest.approx(0.20)
        assert p.child_share == pytest.approx(1.20)
        assert (p.count, p.total) == (4, 10)

    def test_caller2_shares(self, profile):
        p = next(
            p for p in profile.entry("EXAMPLE").parents if p.name == "CALLER2"
        )
        assert p.self_share == pytest.approx(0.30)
        assert p.child_share == pytest.approx(1.80)
        assert (p.count, p.total) == (6, 10)

    def test_percentage_split_forty_sixty(self, profile):
        # "40% of EXAMPLE's time is propagated to CALLER1, and 60% ... to
        # CALLER2."
        entry = profile.entry("EXAMPLE")
        total = entry.total_seconds
        c1, c2 = (
            next(p for p in entry.parents if p.name == n)
            for n in ("CALLER1", "CALLER2")
        )
        assert (c1.self_share + c1.child_share) / total == pytest.approx(0.4)
        assert (c2.self_share + c2.child_share) / total == pytest.approx(0.6)


class TestChildren:
    def test_children_order_and_names(self, profile):
        children = profile.entry("EXAMPLE").children
        assert [c.name for c in children] == ["SUB1", "SUB2", "SUB3"]

    def test_sub1_uses_cycle_totals(self, profile):
        # "Because SUB1 is a member of cycle 1, the self and descendant
        # times and call count fraction are those for the cycle as a
        # whole.  Since cycle 1 is called a total of forty times ... it
        # propagates 50% of the cycle's self and descendant time."
        c = profile.entry("EXAMPLE").children[0]
        assert c.cycle == 1
        assert c.self_share == pytest.approx(1.50)
        assert c.child_share == pytest.approx(1.00)
        assert (c.count, c.total) == (20, 40)
        assert c.display_name == "SUB1 <cycle 1>"

    def test_sub2_one_fifth(self, profile):
        # "Since SUB2 is called a total of five times, 20% of its self
        # and descendant time is propagated to EXAMPLE."
        c = profile.entry("EXAMPLE").children[1]
        assert c.self_share == pytest.approx(0.00)
        assert c.child_share == pytest.approx(0.50)
        assert (c.count, c.total) == (1, 5)

    def test_sub3_static_arc_no_time(self, profile):
        # "... and never calls SUB3": the static arc shows 0/5 and
        # propagates nothing.
        c = profile.entry("EXAMPLE").children[2]
        assert c.self_share == 0.0
        assert c.child_share == 0.0
        assert (c.count, c.total) == (0, 5)


class TestCycleEntry:
    def test_cycle_discovered(self, profile):
        assert len(profile.numbered.cycles) == 1
        assert set(profile.numbered.cycles[0].members) == {"SUB1", "SUB4"}

    def test_cycle_totals(self, profile):
        entry = profile.entry("<cycle 1>")
        assert entry.is_cycle
        assert entry.self_seconds == pytest.approx(3.00)
        assert entry.child_seconds == pytest.approx(2.00)
        assert entry.ncalls == 40
        assert entry.self_calls == 14  # 7 + 7 intra-cycle calls

    def test_cycle_members_listed(self, profile):
        entry = profile.entry("<cycle 1>")
        assert [m.name for m in entry.members] == ["SUB1", "SUB4"]


class TestListing:
    def test_listing_mentions_figure_fields(self, profile):
        text = format_entry(profile, "EXAMPLE")
        assert "EXAMPLE" in text
        assert "4/10" in text
        assert "6/10" in text
        assert "10+4" in text
        assert "20/40" in text
        assert "1/5" in text
        assert "0/5" in text
        assert "SUB1 <cycle 1>" in text

    def test_full_listing_renders(self, profile):
        text = format_graph_profile(profile)
        assert "41.5" in text
        assert "<cycle 1 as a whole>" in text

    def test_index_cross_references(self, profile):
        # "each name is followed by an index that shows where on the
        # listing to find the entry for that routine."
        idx = profile.index_of("EXAMPLE")
        assert idx is not None
        text = format_entry(profile, "CALLER1")
        assert f"EXAMPLE [{idx}]" in text
