"""GP601-GP605: the static dataflow battery.

The gate has two halves, mirroring the GP5xx suite: every canned
program must come out clean (the CI self-lint runs ``repro-check
--flow`` over all of them), and each checker must fire on a doctored
fixture that violates exactly its property.
"""

from __future__ import annotations

import pytest

from repro.check import check_executable
from repro.check.absint import stack_summaries
from repro.check.cfg import build_all_cfgs
from repro.check.diagnostics import CODES, Severity
from repro.check.flow import analyze_flow, flow_passes, render_flow_report
from repro.lang import REL_PROGRAMS, compile_source
from repro.lang.optimize import optimize  # noqa: F401  (re-exported surface)
from repro.machine import assemble
from repro.machine.programs import PROGRAMS

from tests.flow_golden import FLOW_PROGRAMS, compute_flow_report, golden_path
from tests.pipeline_golden import canned_profile_data


def codes_of(src: str) -> set[str]:
    exe = assemble(src)
    return {d.code for d in flow_passes(exe)}


# -- registry ---------------------------------------------------------------


def test_gp6_codes_are_registered():
    for code in ("GP601", "GP602", "GP603", "GP604", "GP605",
                 "GP610", "GP611", "GP612"):
        assert code in CODES
    assert CODES["GP602"][0] is Severity.ERROR
    assert CODES["GP601"][0] is Severity.WARNING
    assert CODES["GP610"][0] is Severity.ERROR


def test_list_codes_table_includes_gp6(capsys):
    from repro.cli.check_cli import main

    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in ("GP601", "GP602", "GP603", "GP604", "GP605",
                 "GP610", "GP611", "GP612"):
        assert code in out


# -- clean on healthy programs ----------------------------------------------


@pytest.mark.parametrize("profile", [True, False])
def test_every_canned_program_is_flow_clean(profile):
    """The zero-false-positive gate: no GP6xx on any canned program."""
    for name, builder in sorted(PROGRAMS.items()):
        exe = assemble(builder(), name=name, profile=profile)
        assert flow_passes(exe) == [], name


def test_flow_battery_clean_through_check_executable():
    for name in ("fib", "dispatch", "insertion_sort"):
        exe, data = canned_profile_data(name)
        report = check_executable(exe, [data], [name], flow=True)
        assert not [d for d in report if d.code.startswith("GP6")], name


# -- each checker fires on a doctored fixture --------------------------------


def test_gp601_fires_on_always_taken_forward_branch():
    diags = [
        d for d in flow_passes(assemble(
            ".func main\n PUSH 1\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
        ))
        if d.code == "GP601"
    ]
    (finding,) = diags
    assert "always taken" in finding.message
    assert finding.routine == "main"


def test_gp601_fires_on_never_taken_branch():
    codes = codes_of(
        ".func main\n PUSH 0\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
    )
    # The fall-through arm stays live, so only the constant branch fires.
    assert codes == {"GP601"}


def test_gp601_spares_varying_conditions():
    codes = codes_of(
        ".func main\n GLOAD 0\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
    )
    assert "GP601" not in codes


def test_gp602_fires_on_depth_conflict():
    src = (
        ".func main\n GLOAD 0\n JZ a\n PUSH 1\n PUSH 2\n JMP join\n"
        "a:\n PUSH 1\njoin:\n HALT\n.end\n"
    )
    diags = [d for d in flow_passes(assemble(src)) if d.code == "GP602"]
    (finding,) = diags
    assert "depths" in finding.message


def test_gp602_fires_on_ret_disagreement():
    src = (
        ".func f\n GLOAD 0\n JZ a\n PUSH 1\n RET\na:\n RET\n.end\n"
        ".func main\n CALL f\n HALT\n.end\n"
    )
    diags = [d for d in flow_passes(assemble(src)) if d.code == "GP602"]
    assert any("RET paths" in d.message for d in diags)
    assert all(d.routine == "f" for d in diags)


def test_gp603_fires_on_loop_without_exit():
    src = ".func main\ntop:\n GLOAD 0\n POP\n JMP top\n.end\n"
    diags = [d for d in flow_passes(assemble(src)) if d.code == "GP603"]
    (finding,) = diags
    assert finding.address == 0  # the loop header


def test_gp603_fires_when_the_only_exit_edge_is_dead():
    """An always-taken back edge: GP603's case, explicitly not GP601's."""
    src = (
        ".func main\ntop:\n GLOAD 0\n POP\n PUSH 1\n JNZ top\n HALT\n.end\n"
    )
    codes = codes_of(src)
    assert "GP603" in codes
    assert "GP605" in codes  # the HALT block is provably never entered
    assert "GP601" not in codes  # decided back edges are exempt


def test_gp603_spares_terminating_loops():
    src = (
        ".func main\n PUSH 3\n STORE 0\ntop:\n LOAD 0\n PUSH 1\n SUB\n"
        " STORE 0\n LOAD 0\n JNZ top\n HALT\n.end\n"
    )
    assert "GP603" not in codes_of(src)


def test_gp604_fires_on_irreducible_flow():
    src = (
        ".func main\n GLOAD 0\n JZ mid\nhead:\n WORK 1\nmid:\n WORK 1\n"
        " GLOAD 0\n JNZ head\n HALT\n.end\n"
    )
    diags = [d for d in flow_passes(assemble(src)) if d.code == "GP604"]
    (finding,) = diags
    assert "irreducible" in finding.message


def test_gp605_fires_on_interval_dead_block():
    src = ".func main\n PUSH 1\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
    diags = [d for d in flow_passes(assemble(src)) if d.code == "GP605"]
    (finding,) = diags
    assert finding.address == 8  # the WORK block the branch jumps over


def test_aborted_value_analysis_stays_silent():
    """An unbalanced routine reports GP602 only — no value-domain
    guesses (GP601/603/605) on top of a broken stack model."""
    src = (
        ".func main\n GLOAD 0\n JZ a\n PUSH 1\n PUSH 2\n JMP join\n"
        "a:\n PUSH 1\njoin:\n POP\n HALT\n.end\n"
    )
    codes = codes_of(src)
    assert codes == {"GP602"}


# -- golden flow reports -----------------------------------------------------


@pytest.mark.parametrize("name", FLOW_PROGRAMS)
def test_flow_report_matches_golden(name):
    frozen = golden_path(name).read_text(encoding="utf-8")
    assert compute_flow_report(name) == frozen


def test_flow_report_is_deterministic():
    name = FLOW_PROGRAMS[0]
    assert compute_flow_report(name) == compute_flow_report(name)


# -- the static prediction ---------------------------------------------------


def test_prediction_shares_sum_to_one():
    exe = assemble(PROGRAMS["fib"](), name="fib", profile=True)
    flow = analyze_flow(exe)
    prediction = flow.prediction
    assert prediction is not None
    assert prediction.total_weight > 0
    total = sum(prediction.share(n) for n in prediction.routines)
    assert total == pytest.approx(1.0)


def test_prediction_multiplies_recursion():
    exe = assemble(PROGRAMS["fib"](), name="fib", profile=True)
    prediction = analyze_flow(exe).prediction
    # fib is recursive: its predicted activations must exceed main's.
    assert prediction.routines["fib"].activations > \
        prediction.routines["main"].activations


def test_prediction_json_is_byte_deterministic():
    exe = assemble(PROGRAMS["dispatch"](), name="dispatch", profile=True)
    one = analyze_flow(exe).prediction.render_json()
    two = analyze_flow(exe).prediction.render_json()
    assert one == two


def test_nested_loops_are_detected():
    exe = assemble(
        PROGRAMS["insertion_sort"](), name="insertion_sort", profile=True
    )
    flow = analyze_flow(exe)
    depths = [
        loop.depth
        for rf in flow.routines.values()
        for loop in rf.loops.loops.values()
    ]
    assert max(depths) >= 2


# -- session caching ---------------------------------------------------------


def test_session_flow_is_memoized():
    from repro.pipeline import ProfileSession

    exe = assemble(PROGRAMS["fib"](), name="fib", profile=True)
    session = ProfileSession.from_executable(exe)
    assert session.flow() is session.flow()


def test_warm_cache_replay_is_identical():
    from repro.pipeline import ProfileSession

    exe = assemble(PROGRAMS["dispatch"](), name="dispatch", profile=True)
    session = ProfileSession.from_executable(exe)
    cold = render_flow_report(session.flow())
    warm = render_flow_report(session.flow())
    fresh = render_flow_report(analyze_flow(exe))
    assert cold == warm == fresh


# -- the compiler's output is balanced ---------------------------------------


@pytest.mark.parametrize("level", [0, 1, 2])
def test_rel_codegen_is_stack_balanced(level):
    """Every routine the Rel compiler emits keeps the operand stack
    balanced — before and after the optimizer's passes."""
    for name, builder in sorted(REL_PROGRAMS.items()):
        exe = compile_source(
            builder(), name=name, profile=True, optimize_level=level
        )
        balances = stack_summaries(exe, build_all_cfgs(exe))
        for fn_name, balance in balances.items():
            assert balance.balanced, f"{name}:{fn_name} at -O{level}"
        gp602 = [d for d in flow_passes(exe) if d.code == "GP602"]
        assert gp602 == [], f"{name} at -O{level}"
