"""End-to-end exercises of the asyncio ingest daemon.

Every test boots a real :class:`ReproServer` on a loopback port inside
one event loop and speaks raw HTTP/1.1 to it — the same byte stream a
hostile network would deliver, including mid-body hangups.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.fleet import ProfileAccumulator
from repro.gmon import dumps_gmon, parse_gmon_raw
from repro.serve import ReproServer, ServeConfig

from tests.helpers import make_symbols, profile_data

SYMS = make_symbols("main", "work", "leaf")


def blob_for(arcs, ticks) -> bytes:
    return dumps_gmon(profile_data(SYMS, arcs, ticks))


BLOB_A = blob_for([("main", "work", 3), ("work", "leaf", 2)],
                  {"main": 4, "work": 2})
BLOB_B = blob_for([("main", "leaf", 1)], {"leaf": 5})
#: A different histogram layout (different symbol span).
BLOB_OTHER_LAYOUT = dumps_gmon(
    profile_data(make_symbols("main", "work", "leaf", "extra"),
                 [("main", "work", 1)], {"main": 1})
)


async def http(
    host, port, method, path, body=b"", headers=None,
    *, read_exact_response=True,
):
    """One raw HTTP exchange; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await _exchange(reader, writer, method, path, body, headers)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _exchange(reader, writer, method, path, body=b"", headers=None):
    head = [f"{method} {path} HTTP/1.1", "host: t"]
    if body or method in ("POST", "PUT"):
        head.append(f"content-length: {len(body)}")
    for k, v in (headers or {}).items():
        head.append(f"{k}: {v}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    rheaders = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode().partition(":")
        rheaders[name.strip().lower()] = value.strip()
    length = int(rheaders.get("content-length", 0))
    payload = await reader.readexactly(length) if length else b""
    return status, rheaders, payload


def run(coro):
    return asyncio.run(coro)


async def booted(tmp_path, **overrides):
    config = ServeConfig(root=str(tmp_path / "state"), port=0, **overrides)
    server = ReproServer(config)
    host, port = await server.start()
    return server, host, port


class TestUploadPath:
    def test_merge_and_sum_roundtrip(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                s1, _, b1 = await http(host, port, "POST", "/v1/profiles/t1",
                                       BLOB_A)
                s2, _, b2 = await http(host, port, "POST", "/v1/profiles/t1",
                                       BLOB_B)
                assert (s1, s2) == (200, 200)
                assert json.loads(b1)["seq"] == 1
                assert json.loads(b2)["seq"] == 2
                s3, _, merged = await http(host, port, "GET",
                                           "/v1/profiles/t1/sum")
                assert s3 == 200
                return merged
            finally:
                await server.stop()

        merged = run(go())
        acc = ProfileAccumulator()
        acc.add_raw(parse_gmon_raw(BLOB_A))
        acc.add_raw(parse_gmon_raw(BLOB_B))
        assert merged == dumps_gmon(acc.result())

    def test_idempotency_key_dedups(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                key = {"x-idempotency-key": "upload-1"}
                _, _, b1 = await http(host, port, "POST", "/v1/profiles/t1",
                                      BLOB_A, key)
                s2, _, b2 = await http(host, port, "POST", "/v1/profiles/t1",
                                       BLOB_A, key)
                assert s2 == 200
                assert json.loads(b2)["status"] == "duplicate"
                assert json.loads(b2)["seq"] == json.loads(b1)["seq"]
                _, _, merged = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                return merged
            finally:
                await server.stop()

        merged = run(go())
        acc = ProfileAccumulator()
        acc.add_raw(parse_gmon_raw(BLOB_A))
        assert merged == dumps_gmon(acc.result())  # folded exactly once

    def test_bad_magic_rejected_before_body(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                status, _, body = await http(
                    host, port, "POST", "/v1/profiles/t1",
                    b"not-a-gmon-file" + b"\x00" * 100,
                )
                assert status == 400
                assert "not a profile data file" in json.loads(body)["error"]
                assert server.stats.rejected_front_door == 1
                # tenant state is untouched
                status, _, _ = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                assert status == 404
            finally:
                await server.stop()

        run(go())

    def test_oversized_declaration_rejected(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path, max_body=1024)
            try:
                status, _, _ = await http(
                    host, port, "POST", "/v1/profiles/t1", b"",
                    {"content-length": str(10 << 20)},
                )
                assert status == 413
            finally:
                await server.stop()

        run(go())

    def test_incompatible_layout_409(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                status, _, body = await http(
                    host, port, "POST", "/v1/profiles/t1", BLOB_OTHER_LAYOUT
                )
                assert status == 409
                assert "incompatible" in json.loads(body)["error"]
                _, _, merged = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                return merged
            finally:
                await server.stop()

        merged = run(go())
        acc = ProfileAccumulator()
        acc.add_raw(parse_gmon_raw(BLOB_A))
        assert merged == dumps_gmon(acc.result())  # reject left no trace

    def test_unsalvageable_body_quarantined(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                # right magic, nothing recoverable behind it
                status, _, body = await http(
                    host, port, "POST", "/v1/profiles/t1",
                    b"gmon\x01\x00" + b"\xff" * 6,
                )
                doc = json.loads(body)
                assert status == 422
                assert doc["status"] == "quarantined"
                sq, _, listing = await http(host, port, "GET",
                                            "/v1/quarantine/t1")
                entries = json.loads(listing)
                assert sq == 200 and len(entries) == 1
                assert entries[0]["entry"] == doc["entry"]
                assert "unsalvageable" in entries[0]["reason"]
            finally:
                await server.stop()

        run(go())

    def test_nonsense_header_is_not_a_500(self, tmp_path):
        """Right magic, structurally-parseable but invalid header
        (high_pc below low_pc): salvage territory, never a crash."""
        import struct

        bad = (
            b"gmon\x01\x00" + struct.pack("<H", 0)
            + struct.pack("<IQQII", 1, 100, 50, 10, 60)  # high < low
            + b"\x00" * 40
        )

        async def go():
            server, host, port = await booted(tmp_path)
            try:
                status, _, body = await http(host, port, "POST",
                                             "/v1/profiles/t1", bad)
                assert status in (200, 422), json.loads(body)
                assert server.stats.errors == 0
            finally:
                await server.stop()

        run(go())

    def test_truncated_body_salvaged(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                status, _, body = await http(
                    host, port, "POST", "/v1/profiles/t1", BLOB_A[:-10]
                )
                doc = json.loads(body)
                assert status == 200
                assert doc["status"] == "merged" and doc["salvaged"]
                assert doc["warnings"]
            finally:
                await server.stop()

        run(go())

    def test_empty_upload_400(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                status, _, _ = await http(host, port, "POST",
                                          "/v1/profiles/t1", b"")
                assert status == 400
            finally:
                await server.stop()

        run(go())

    def test_invalid_tenant_name_400(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                # an encoded slash cannot smuggle a path traversal: the
                # decoded segment no longer matches any route
                status, _, _ = await http(
                    host, port, "POST", "/v1/profiles/..%2Fescape", BLOB_A
                )
                assert status == 404
                status, _, _ = await http(
                    host, port, "POST", "/v1/profiles/..", BLOB_A
                )
                assert status == 400
            finally:
                await server.stop()

        run(go())


class TestBackpressure:
    def test_tenant_queue_depth_429(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path, queue_depth=2)
            try:
                store = server.tenant("t1")
                store.inflight = 2  # as if two uploads sat on the shard
                status, rheaders, _ = await http(
                    host, port, "POST", "/v1/profiles/t1", BLOB_A
                )
                assert status == 429
                assert rheaders.get("retry-after") == "1"
                assert server.stats.throttled == 1
                store.inflight = 0
                status, _, _ = await http(host, port, "POST",
                                          "/v1/profiles/t1", BLOB_A)
                assert status == 200  # recovers once the queue drains
            finally:
                await server.stop()

        run(go())

    def test_global_byte_budget_429(self, tmp_path):
        async def go():
            server, host, port = await booted(
                tmp_path, max_inflight_bytes=len(BLOB_A) // 2
            )
            try:
                status, rheaders, _ = await http(
                    host, port, "POST", "/v1/profiles/t1", BLOB_A
                )
                assert status == 429
                assert rheaders.get("retry-after") == "2"
            finally:
                await server.stop()

        run(go())


class TestRobustness:
    def test_mid_body_disconnect_leaves_server_alive(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /v1/profiles/t1 HTTP/1.1\r\nhost: t\r\n"
                    + f"content-length: {len(BLOB_A)}\r\n\r\n".encode()
                    + BLOB_A[:20]  # hang up mid-body
                )
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                # the half-upload left nothing behind and took nothing down
                status, _, _ = await http(host, port, "GET", "/healthz")
                assert status == 200
                status, _, _ = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                assert status == 404
                assert server.stats.disconnects >= 1
            finally:
                await server.stop()

        run(go())

    def test_keep_alive_reuses_connection(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                s1, _, _ = await _exchange(reader, writer, "POST",
                                           "/v1/profiles/t1", BLOB_A)
                s2, _, merged = await _exchange(reader, writer, "GET",
                                                "/v1/profiles/t1/sum")
                writer.close()
                await writer.wait_closed()
                assert (s1, s2) == (200, 200)
                assert server.stats.connections == 1
            finally:
                await server.stop()

        run(go())

    def test_post_reject_closes_connection(self, tmp_path):
        """After a mid-body rejection the unread bytes must not be
        reparsed as the next request."""

        async def go():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                reader, writer = await asyncio.open_connection(host, port)
                s, rheaders, _ = await _exchange(
                    reader, writer, "POST", "/v1/profiles/t1",
                    BLOB_OTHER_LAYOUT,
                )
                assert s == 409
                # server closed; the leftover body bytes die with it
                assert await reader.read() == b""
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()

        run(go())

    def test_garbage_request_line(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"\x00\x01\x02 garbage\r\n\r\n")
                await writer.drain()
                line = await reader.readline()
                assert b"400" in line
                writer.close()
                await writer.wait_closed()
                status, _, _ = await http(host, port, "GET", "/healthz")
                assert status == 200
            finally:
                await server.stop()

        run(go())


class TestQueries:
    def test_unknown_endpoint_404_and_method_405(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                s1, _, _ = await http(host, port, "GET", "/v1/nope")
                s2, _, _ = await http(host, port, "PUT", "/healthz", b"x")
                assert (s1, s2) == (404, 405)
            finally:
                await server.stop()

        run(go())

    def test_stats_and_tenants(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                await http(host, port, "POST", "/v1/profiles/t2", BLOB_B)
                _, _, body = await http(host, port, "GET", "/v1/stats")
                doc = json.loads(body)
                assert set(doc["tenants"]) == {"t1", "t2"}
                assert doc["tenants"]["t1"]["accepted"] == 1
                _, _, body = await http(host, port, "GET", "/v1/tenants")
                assert json.loads(body) == ["t1", "t2"]
            finally:
                await server.stop()

        run(go())

    def test_window_query(self, tmp_path):
        clock_now = [1000.0]

        async def go():
            server, host, port = await booted(
                tmp_path, clock=lambda: clock_now[0]
            )
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                clock_now[0] += 100
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_B)
                clock_now[0] += 10
                # only BLOB_B lies within the last 60 seconds
                _, _, recent = await http(
                    host, port, "GET", "/v1/profiles/t1/sum?window=60"
                )
                s_empty, _, _ = await http(
                    host, port, "GET", "/v1/profiles/t1/sum?window=1"
                )
                s_bad, _, _ = await http(
                    host, port, "GET", "/v1/profiles/t1/sum?window=soon"
                )
                assert (s_empty, s_bad) == (404, 400)
                return recent
            finally:
                await server.stop()

        recent = run(go())
        acc = ProfileAccumulator()
        acc.add_raw(parse_gmon_raw(BLOB_B))
        assert recent == dumps_gmon(acc.result())

    def test_flat_needs_image(self, tmp_path):
        async def go():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                status, _, body = await http(host, port, "GET",
                                             "/v1/profiles/t1/flat")
                assert status == 409
                assert "--image" in json.loads(body)["error"]
            finally:
                await server.stop()

        run(go())

    def test_flat_and_graph_with_symbol_image(self, tmp_path):
        image = tmp_path / "syms.json"
        SYMS.save(image)

        async def go():
            server, host, port = await booted(tmp_path, image=str(image))
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A)
                s1, _, flat = await http(host, port, "GET",
                                         "/v1/profiles/t1/flat")
                s2, _, graph = await http(host, port, "GET",
                                          "/v1/profiles/t1/graph")
                assert (s1, s2) == (200, 200)
                assert b"main" in flat and b"work" in flat
                assert b"main" in graph
            finally:
                await server.stop()

        run(go())


class TestPersistenceAcrossRestart:
    def test_restart_recovers_identical_state(self, tmp_path):
        async def first():
            server, host, port = await booted(tmp_path)
            try:
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_A,
                           {"x-idempotency-key": "a"})
                await http(host, port, "POST", "/v1/profiles/t1", BLOB_B,
                           {"x-idempotency-key": "b"})
                _, _, merged = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                return merged
            finally:
                await server.stop()

        async def second():
            server, host, port = await booted(tmp_path)
            try:
                # a retried upload still dedups after the restart
                s, _, body = await http(host, port, "POST",
                                        "/v1/profiles/t1", BLOB_A,
                                        {"x-idempotency-key": "a"})
                assert s == 200 and json.loads(body)["status"] == "duplicate"
                _, _, merged = await http(host, port, "GET",
                                          "/v1/profiles/t1/sum")
                return merged
            finally:
                await server.stop()

        assert run(first()) == run(second())
