"""Smoke tests for the corrupt-gmon corpus generator.

The full sweep (every program x every truncation x 500 flips, ~10k
mutants) runs in CI's fault-injection job; here we prove the generator
itself works and gate a representative slice so a regression in the
strict/salvage contract fails fast locally too.
"""

from tests.corrupt_corpus import check_mutant, main, mutants, run, valid_blob


def test_valid_blob_is_a_real_profile():
    from repro.gmon import parse_gmon

    data = parse_gmon(valid_blob("fib"))
    assert data.total_ticks > 0
    assert data.arcs


def test_slice_of_corpus_upholds_contract():
    blob = valid_blob("fib")
    checked = 0
    for tag, truncated, mutated in mutants(blob, flips=40, stride=7):
        assert check_mutant(tag, truncated, mutated) is None
        checked += 1
    assert checked > 40  # truncations plus all 40 flips


def test_run_writes_files_and_verifies(tmp_path):
    lines: list[str] = []
    failures = run(["fib"], flips=5, stride=50, out=str(tmp_path),
                   verify=True, log=lines.append)
    assert failures == 0
    written = list(tmp_path.iterdir())
    assert written and all(p.suffix == ".gmon" for p in written)
    assert any("verify:" in line for line in lines)


def test_cli_rejects_unknown_program(capsys):
    assert main(["--programs", "no_such_prog"]) == 2
    assert "no_such_prog" in capsys.readouterr().err
