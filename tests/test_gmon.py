"""Tests for the on-disk profile data format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData, merge_profiles
from repro.errors import GmonFormatError, MergeError
from repro.gmon import read_gmon, write_gmon
from repro.gmon.format import MAGIC


def _sample_data(comment="test run"):
    hist = Histogram(0, 40, [0, 5, 0, 2, 0, 0, 0, 1, 0, 0], profrate=60)
    arcs = [RawArc(4, 20, 17), RawArc(0, 8, 1), RawArc(24, 20, 0)]
    return ProfileData(hist, arcs, comment=comment)


class TestRoundTrip:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "gmon.out"
        data = _sample_data()
        write_gmon(data, path)
        back = read_gmon(path)
        assert back.histogram.counts == data.histogram.counts
        assert back.histogram.low_pc == 0
        assert back.histogram.high_pc == 40
        assert back.histogram.profrate == 60
        assert back.comment == "test run"
        assert back.runs == 1
        assert sorted(back.arcs, key=lambda a: (a.from_pc, a.self_pc)) == sorted(
            data.arcs, key=lambda a: (a.from_pc, a.self_pc)
        )

    def test_roundtrip_empty(self, tmp_path):
        path = tmp_path / "gmon.out"
        write_gmon(ProfileData(Histogram(0, 0, [])), path)
        back = read_gmon(path)
        assert back.arcs == []
        assert back.histogram.num_buckets == 0

    def test_duplicate_arcs_condensed_on_write(self, tmp_path):
        hist = Histogram(0, 8, [0, 0])
        data = ProfileData(hist, [RawArc(0, 4, 2), RawArc(0, 4, 3)])
        path = tmp_path / "gmon.out"
        write_gmon(data, path)
        back = read_gmon(path)
        assert back.arcs == [RawArc(0, 4, 5)]

    def test_deterministic_output(self, tmp_path):
        p1, p2 = tmp_path / "a", tmp_path / "b"
        write_gmon(_sample_data(), p1)
        write_gmon(_sample_data(), p2)
        assert p1.read_bytes() == p2.read_bytes()


class TestRawGmon:
    """The wire-form view: lazy decoding, settled public types."""

    def test_counts_is_always_a_tuple(self):
        """Pinned wire type: ``RawGmon.counts`` is ``tuple[int, ...]``.

        Consumers hash, cache, and compare it; a list here would be a
        silent API break, so the type is part of the format contract.
        """
        from repro.gmon import dumps_gmon, parse_gmon_raw
        from repro.gmon.format import RawGmon

        raw = parse_gmon_raw(dumps_gmon(_sample_data()))
        assert type(raw.counts) is tuple
        assert raw.counts == (0, 5, 0, 2, 0, 0, 0, 1, 0, 0)
        # repeated access returns the same decoded object
        assert raw.counts is raw.counts
        # construction from an explicit sequence normalizes too
        direct = RawGmon("", 1, 0, 40, 3, 60, [1, 2, 3])
        assert type(direct.counts) is tuple

    def test_counts_blob_round_trips_and_equals_eager(self):
        from repro.gmon import dumps_gmon, parse_gmon_raw
        from repro.gmon.format import RawGmon

        blob = dumps_gmon(_sample_data())
        raw = parse_gmon_raw(blob)
        eager = RawGmon(
            raw.comment, raw.runs, raw.low_pc, raw.high_pc, raw.nbuckets,
            raw.profrate, raw.counts, raw.arc_blob, raw.narcs,
        )
        assert raw == eager
        assert hash(raw) == hash(eager)

    def test_arcs_as_arrays_matches_iter_arcs(self):
        from repro.gmon import dumps_gmon, parse_gmon_raw

        raw = parse_gmon_raw(dumps_gmon(_sample_data()))
        froms, selfs, counts = raw.arcs_as_arrays()
        assert list(zip(froms, selfs, counts)) == list(raw.iter_arcs())
        assert len(froms) == raw.narcs


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"not a profile")
        with pytest.raises(GmonFormatError, match="magic"):
            read_gmon(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "gmon.out"
        write_gmon(_sample_data(), path)
        blob = path.read_bytes()
        for cut in (len(MAGIC), len(blob) // 2, len(blob) - 1):
            path.write_bytes(blob[:cut])
            with pytest.raises(GmonFormatError):
                read_gmon(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "gmon.out"
        write_gmon(_sample_data(), path)
        path.write_bytes(path.read_bytes() + b"x")
        with pytest.raises(GmonFormatError, match="trailing"):
            read_gmon(path)

    def test_count_overflow_rejected(self, tmp_path):
        hist = Histogram(0, 4, [0])
        data = ProfileData(hist, [RawArc(0, 0, 2**32)])
        with pytest.raises(GmonFormatError, match="32 bits"):
            write_gmon(data, tmp_path / "gmon.out")

    def test_histogram_count_overflow_rejected(self, tmp_path):
        data = ProfileData(Histogram(0, 4, [2**32]), [])
        with pytest.raises(GmonFormatError, match="32 bits"):
            write_gmon(data, tmp_path / "gmon.out")

    def test_comment_too_long_rejected(self, tmp_path):
        data = ProfileData(Histogram(0, 4, [0]), [], comment="x" * 70_000)
        with pytest.raises(GmonFormatError, match="comment"):
            write_gmon(data, tmp_path / "gmon.out")


class TestMerge:
    def test_merge_sums_everything(self):
        a, b = _sample_data("a"), _sample_data("b")
        merged = merge_profiles([a, b])
        assert merged.total_ticks == a.total_ticks * 2
        assert merged.runs == 2
        assert merged.comment == "a; b"
        arc = next(x for x in merged.arcs if x.from_pc == 4)
        assert arc.count == 34

    def test_merge_static_arcs_stay_zero(self):
        merged = merge_profiles([_sample_data(), _sample_data()])
        static = next(x for x in merged.arcs if x.from_pc == 24)
        assert static.count == 0

    def test_merge_incompatible_raises(self):
        a = _sample_data()
        b = ProfileData(Histogram(0, 80, [0] * 10), [])
        with pytest.raises(MergeError):
            merge_profiles([a, b])

    def test_merge_roundtrips(self, tmp_path):
        merged = merge_profiles([_sample_data(), _sample_data()])
        path = tmp_path / "gmon.sum"
        write_gmon(merged, path)
        back = read_gmon(path)
        assert back.runs == 2
        assert back.total_ticks == merged.total_ticks

    def test_merge_empty_list(self):
        with pytest.raises(MergeError):
            merge_profiles([])


@settings(max_examples=40)
@given(
    st.lists(st.integers(0, 1000), min_size=0, max_size=30),
    st.lists(
        st.tuples(
            st.integers(0, 2**40), st.integers(0, 2**40), st.integers(0, 10**6)
        ),
        max_size=20,
    ),
    st.text(max_size=40),
)
def test_roundtrip_property(tmp_path_factory, counts, arc_tuples, comment):
    """Property: write → read is the identity on condensed data."""
    tmp = tmp_path_factory.mktemp("gmon")
    hist = Histogram(0, max(len(counts), 1) * 4, counts or [0])
    data = ProfileData(
        hist,
        [RawArc(f, s, c) for f, s, c in arc_tuples],
        comment=comment,
    )
    path = tmp / "gmon.out"
    write_gmon(data, path)
    back = read_gmon(path)
    assert back.histogram.counts == data.histogram.counts
    assert back.comment == comment
    assert back.condensed_arcs() == data.condensed_arcs()
