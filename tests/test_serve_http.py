"""The hand-rolled HTTP layer: hostile input maps to typed errors."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    render_response,
)


def parse(raw: bytes):
    """Feed raw bytes to read_request through a real StreamReader."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_minimal_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.keep_alive

    def test_query_string_and_percent_encoding(self):
        req = parse(b"GET /v1/profiles/t%2D1/sum?window=30&x= HTTP/1.1\r\n\r\n")
        assert req.path == "/v1/profiles/t-1/sum"
        assert req.query == {"window": "30", "x": ""}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_eof_mid_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET /part")
        assert err.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"GARBAGE\r\n\r\n")
        assert err.value.status == 400

    def test_unsupported_version(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/2.0\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert err.value.status == 413

    def test_header_block_too_large(self):
        raw = b"GET / HTTP/1.1\r\n" + b"x-pad: " + b"y" * 33000 + b"\r\n\r\n"
        with pytest.raises(HttpError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_too_many_headers(self):
        headers = b"".join(b"h%d: v\r\n" % i for i in range(100))
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert err.value.status == 413

    def test_malformed_header(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.value.status == 400

    def test_header_name_with_leading_space_rejected(self):
        # request smuggling classic: obs-fold / space-prefixed names
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\n foo: bar\r\n\r\n")
        assert err.value.status == 400

    def test_eof_inside_headers(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nhost: x\r\n")
        assert err.value.status == 400


class TestKeepAlive:
    def mk(self, version: str, conn: str | None) -> Request:
        headers = {} if conn is None else {"connection": conn}
        return Request("GET", "/", "/", {}, headers, version)

    def test_http11_default_keep_alive(self):
        assert self.mk("HTTP/1.1", None).keep_alive

    def test_http11_close(self):
        assert not self.mk("HTTP/1.1", "close").keep_alive

    def test_http10_default_close(self):
        assert not self.mk("HTTP/1.0", None).keep_alive

    def test_http10_explicit_keep_alive(self):
        assert self.mk("HTTP/1.0", "keep-alive").keep_alive


class TestContentLength:
    def mk(self, headers: dict[str, str], method: str = "POST") -> Request:
        return Request(method, "/", "/", {}, headers)

    def test_valid(self):
        assert self.mk({"content-length": "42"}).content_length(100) == 42

    def test_missing_on_post_is_411(self):
        with pytest.raises(HttpError) as err:
            self.mk({}).content_length(100)
        assert err.value.status == 411

    def test_missing_on_get_is_zero(self):
        assert self.mk({}, method="GET").content_length(100) == 0

    def test_unparseable_is_400(self):
        with pytest.raises(HttpError) as err:
            self.mk({"content-length": "lots"}).content_length(100)
        assert err.value.status == 400

    def test_negative_is_400(self):
        with pytest.raises(HttpError) as err:
            self.mk({"content-length": "-5"}).content_length(100)
        assert err.value.status == 400

    def test_over_limit_is_413(self):
        with pytest.raises(HttpError) as err:
            self.mk({"content-length": "101"}).content_length(100)
        assert err.value.status == 413

    def test_chunked_is_501(self):
        with pytest.raises(HttpError) as err:
            self.mk(
                {"transfer-encoding": "chunked", "content-length": "5"}
            ).content_length(100)
        assert err.value.status == 501


class TestRenderResponse:
    def test_shape(self):
        raw = render_response(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert body == b'{"ok": true}'

    def test_extra_headers_and_close(self):
        raw = render_response(
            429, b"{}", headers={"Retry-After": "1"}, keep_alive=False
        )
        assert b"HTTP/1.1 429 Too Many Requests\r\n" in raw
        assert b"Retry-After: 1\r\n" in raw
        assert b"Connection: close\r\n" in raw
