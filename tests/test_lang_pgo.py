"""End-to-end tests for the closed §6 loop: run_pgo and its CLIs."""

import json

import pytest

from repro.lang import run_pgo
from repro.lang.programs import REL_PROGRAMS
from repro.machine import CPU, assemble

#: Programs the loop demonstrably speeds up (the benchmark gate's
#: ">= 3 strictly faster" census draws from these).
IMPROVING = ("abstraction", "gcd_chain", "sieve", "classify")


def plain_run(asm: str):
    cpu = CPU(assemble(asm))
    cpu.run()
    return cpu


class TestRunPgo:
    @pytest.mark.parametrize("name", IMPROVING)
    def test_strictly_fewer_cycles(self, name):
        result = run_pgo(REL_PROGRAMS[name](), name=name)
        assert result.identical
        assert result.cycles_final < result.cycles_baseline

    @pytest.mark.parametrize("name", sorted(REL_PROGRAMS))
    def test_behaviour_preserved_everywhere(self, name):
        result = run_pgo(REL_PROGRAMS[name](), name=name, rounds=2)
        assert result.identical
        # the honest re-run of the final assembly agrees too
        cpu = plain_run(result.asm)
        assert list(cpu.output) == result.output
        assert cpu.cycles == result.cycles_final

    def test_byte_deterministic_for_fixed_source(self):
        a = run_pgo(REL_PROGRAMS["classify"](), rounds=2)
        b = run_pgo(REL_PROGRAMS["classify"](), rounds=2)
        assert a.asm == b.asm
        assert a.cycles_final == b.cycles_final

    def test_never_slower_than_baseline(self):
        for name in sorted(REL_PROGRAMS):
            result = run_pgo(REL_PROGRAMS[name](), name=name)
            assert result.cycles_final <= result.cycles_baseline, name

    def test_second_round_converges(self):
        # once the rewrite happened, re-measuring finds nothing new on
        # these small programs: the loop is a fixed point, not a churn.
        result = run_pgo(REL_PROGRAMS["classify"](), rounds=2)
        assert result.rounds[1].saved == 0

    def test_bottleneck_is_the_hot_routine(self):
        result = run_pgo(REL_PROGRAMS["abstraction"]())
        assert result.bottleneck in {"format1", "format2", "write"}

    def test_transform_shapes(self):
        # classify: the skewed if gets swapped; sieve: the inner
        # marking loop gets rotated.
        classify = run_pgo(REL_PROGRAMS["classify"]())
        assert classify.rounds[0].counters.get(
            "branch-order.reordered_ifs", 0
        ) >= 1
        sieve = run_pgo(REL_PROGRAMS["sieve"]())
        assert sieve.rounds[0].counters.get(
            "branch-order.rotated_loops", 0
        ) >= 1

    def test_rounds_must_be_positive(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="at least one round"):
            run_pgo(REL_PROGRAMS["fib"](), rounds=0)


class TestVmCliPgo:
    def _write_source(self, tmp_path, name="classify"):
        path = tmp_path / f"{name}.rl"
        path.write_text(REL_PROGRAMS[name](), encoding="utf-8")
        return str(path)

    def test_profile_then_pgo(self, tmp_path, capsys):
        from repro.cli.vm_cli import main

        src = self._write_source(tmp_path)
        gmon = str(tmp_path / "gmon.out")
        assert main(["run", src, "--profile", "--gmon", gmon]) == 0
        profiled = capsys.readouterr().out
        assert main(["run", src, "--pgo", gmon]) == 0
        optimized = capsys.readouterr().out
        assert "pgo:" in optimized
        assert "branch hint" in optimized
        # same printed program output either way
        assert profiled.splitlines()[0].split("output")[-1] == \
            optimized.splitlines()[1].split("output")[-1]

    def test_pgo_needs_rel_source(self, tmp_path, capsys):
        from repro.cli.vm_cli import main

        assert main(["run", "fib", "--pgo", "nope.out"]) == 1
        assert "Rel source" in capsys.readouterr().err

    def test_stale_gmon_degrades_with_warning(self, tmp_path, capsys):
        from repro.cli.vm_cli import main

        classify = self._write_source(tmp_path, "classify")
        sieve = self._write_source(tmp_path, "sieve")
        gmon = str(tmp_path / "gmon.out")
        assert main(["run", classify, "--profile", "--gmon", gmon]) == 0
        capsys.readouterr()
        # wrong program: must still run, flagged, with baseline layout
        assert main(["run", sieve, "--pgo", gmon]) == 0
        out = capsys.readouterr().out
        assert "stale profile (ignored)" in out


class TestPgoCli:
    def test_list(self, capsys):
        from repro.cli.pgo_cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "classify" in out and "sieve" in out

    def test_canned_program_report(self, capsys):
        from repro.cli.pgo_cli import main

        assert main(["classify", "--rounds", "2"]) == 0
        out = capsys.readouterr().out
        assert "round 1:" in out and "round 2:" in out
        assert "behaviour identical" in out
        assert "total:" in out

    def test_json_report(self, capsys):
        from repro.cli.pgo_cli import main

        assert main(["sieve", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["identical"] is True
        assert blob["cycles_final"] < blob["cycles_baseline"]
        assert blob["rounds"][0]["hints"] >= 1

    def test_artifacts_written(self, tmp_path, capsys):
        from repro.cli.pgo_cli import main
        from repro.machine import Executable

        out = str(tmp_path / "classify.vmexe")
        asm = str(tmp_path / "classify.s")
        assert main(["classify", "--out", out, "--asm", asm]) == 0
        capsys.readouterr()
        exe = Executable.load(out)
        cpu = CPU(exe)
        cpu.run()
        text = (tmp_path / "classify.s").read_text(encoding="utf-8")
        assert text.startswith(".") or ".func" in text

    def test_unknown_source_fails(self, capsys):
        from repro.cli.pgo_cli import main

        assert main(["no_such_program"]) == 1
        assert "neither" in capsys.readouterr().err

    def test_missing_source_fails(self, capsys):
        from repro.cli.pgo_cli import main

        assert main([]) == 1


class TestPgoOutputPassesChecker:
    @pytest.mark.parametrize("name", sorted(REL_PROGRAMS))
    def test_check_strict_flow_clean(self, name, tmp_path, capsys):
        """Every PGO'd program must satisfy the static checker's full
        strict battery — the optimizer may not emit shapes the flow
        analysis can't prove."""
        from repro.cli.check_cli import main as check_main
        from repro.cli.pgo_cli import main as pgo_main

        out = str(tmp_path / f"{name}.vmexe")
        assert pgo_main([name, "--out", out, "--instrumented"]) == 0
        capsys.readouterr()
        assert check_main(["--strict", "--flow", out]) == 0, (
            capsys.readouterr().out
        )
