"""Golden-output tests: the listings' exact text is part of the contract.

gprof's output format *is* its interface — the retrospective jokes
that "after a while we got used to it" — so the formatted Figure 4
entry is frozen here character for character.  A deliberate format
change must update these strings consciously.
"""


from repro.report import format_entry, format_flat_profile

from tests.test_figure4 import figure4_profile

GOLDEN_EXAMPLE_ENTRY = (
    "                0.30        1.80        6/10         CALLER2 [8]\n"
    "                0.20        1.20        4/10         CALLER1 [10]\n"
    "[5]     41.5    0.50        3.00        10+4     EXAMPLE [5]\n"
    "                1.50        1.00       20/40         SUB1 <cycle 1> [3]\n"
    "                0.00        0.50         1/5         SUB2 [6]\n"
    "                0.00        0.00         0/5         SUB3 [11]\n"
)


def _normalize(text: str) -> list[str]:
    return [line.rstrip() for line in text.strip("\n").splitlines()]


class TestGoldenFigure4:
    def test_example_entry_text_frozen(self):
        profile = figure4_profile()
        got = _normalize(format_entry(profile, "EXAMPLE"))
        want = _normalize(GOLDEN_EXAMPLE_ENTRY)
        assert got == want

    def test_flat_header_frozen(self):
        profile = figure4_profile()
        text = format_flat_profile(profile)
        assert (
            "  %   cumulative   self              self     total" in text
        )
        assert (
            " time   seconds   seconds    calls  ms/call  ms/call  name" in text
        )

    def test_listing_is_ascii(self):
        # 1982 output devices: the listings must stay plain ASCII.
        profile = figure4_profile()
        format_entry(profile, "EXAMPLE").encode("ascii")
        format_flat_profile(profile).encode("ascii")
