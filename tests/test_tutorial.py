"""The tutorial's command sequence, executed — docs that cannot rot."""

import re
from pathlib import Path

import pytest

from repro.cli.gprof_cli import main as gprof_main
from repro.cli.kgmon_cli import main as kgmon_main
from repro.cli.vm_cli import main as vm_main

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"

PRIMES = """
array flags[500];

func mark_multiples(p) {
    m = p * p;
    while (m < 500) { flags[m] = 1; m = m + p; }
    return 0;
}

func count_primes() {
    count = 0;
    i = 2;
    while (i < 500) {
        if (flags[i] == 0) { count = count + 1; mark_multiples(i); }
        i = i + 1;
    }
    return count;
}

func main() { print count_primes(); }
"""


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "primes.rl").write_text(PRIMES)
    return tmp_path


class TestTutorialSteps:
    def test_step1_compile_and_run(self, workdir, capsys):
        assert vm_main(["asm", "primes.rl", "-o", "primes.vmexe"]) == 0
        assert vm_main(["run", "primes.vmexe"]) == 0
        out = capsys.readouterr().out
        assert "output [95]" in out  # 95 primes below 500
        assert vm_main(
            ["asm", "primes.rl", "-o", "primes-pg.vmexe", "--profile"]
        ) == 0
        assert vm_main(
            ["run", "primes-pg.vmexe", "--profile", "--gmon", "primes.gmon"]
        ) == 0
        assert (workdir / "primes.gmon").exists()

    def test_step2_listings(self, workdir, capsys):
        vm_main(["asm", "primes.rl", "-o", "primes-pg.vmexe", "--profile"])
        vm_main(["run", "primes-pg.vmexe", "--profile", "--gmon", "primes.gmon"])
        capsys.readouterr()
        assert gprof_main(
            ["primes-pg.vmexe", "primes.gmon", "--explain"]
        ) == 0
        out = capsys.readouterr().out
        assert "count_primes" in out
        assert "understanding the call graph profile" in out
        # the abstraction's cost is charged to its user
        entry_line = next(
            l for l in out.splitlines()
            if re.search(r"\[\d+\].*count_primes", l)
        )
        assert entry_line  # a primary line exists

    def test_step3_block_counts(self, workdir, capsys):
        assert vm_main(["run", "primes.rl", "--count"]) == 0
        out = capsys.readouterr().out
        assert "block execution counts:" in out
        assert "mark_multiples" in out

    def test_step4_summing(self, workdir, capsys):
        vm_main(["asm", "primes.rl", "-o", "primes-pg.vmexe", "--profile"])
        vm_main(["run", "primes-pg.vmexe", "--profile", "--gmon", "run1.gmon"])
        vm_main(["run", "primes-pg.vmexe", "--profile", "--gmon", "run2.gmon"])
        capsys.readouterr()
        assert gprof_main(
            ["primes-pg.vmexe", "run1.gmon", "run2.gmon", "-s", "gmon.sum"]
        ) == 0
        assert gprof_main(["primes-pg.vmexe", "gmon.sum"]) == 0
        out = capsys.readouterr().out
        assert "mark_multiples" in out

    def test_step5_kernel(self, workdir, capsys):
        assert kgmon_main(
            ["--iterations", "300", "--windows", "1", "--out-prefix", "kern"]
        ) == 0
        capsys.readouterr()
        assert gprof_main(
            [
                "kern.syms", "kern.window0.gmon",
                "-k", "if_output/netisr",
                "-k", "tcp_input/tcp_output",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "arcs removed from the analysis" in out

    def test_step13_pipeline_timings(self, workdir, capsys):
        import json

        vm_main(["asm", "primes.rl", "-o", "primes-pg.vmexe", "--profile"])
        vm_main(["run", "primes-pg.vmexe", "--profile", "--gmon", "primes.gmon"])
        capsys.readouterr()
        assert gprof_main(
            ["primes-pg.vmexe", "primes.gmon",
             "--timings", "--trace", "trace.json"]
        ) == 0
        err = capsys.readouterr().err
        assert "pipeline timings" in err
        for stage in ("symbolize", "propagate", "assemble"):
            assert stage in err
        blob = json.loads((workdir / "trace.json").read_text())
        assert blob["format"] == "repro-pipeline-trace-1"

    def test_tutorial_mentions_only_real_commands(self):
        # every `repro-…` token in the tutorial names a shipped CLI
        # (longer hyphenated tokens like the trace format tag are not
        # commands)
        text = TUTORIAL.read_text()
        commands = set(re.findall(r"\brepro-[a-z]+(?![a-z-])", text))
        assert commands <= {
            "repro-vm", "repro-gprof", "repro-prof",
            "repro-kgmon", "repro-stacks", "repro-check", "repro-merge",
            "repro-serve", "repro-agent", "repro-pgo",
        }
