"""Tests for the Python profiler frontend (arcs, timing, lifecycle)."""

import pytest

from repro.core import analyze
from repro.errors import ProfilerError
from repro.gmon import read_gmon, write_gmon
from repro.pyprof import Profiler, profile_call


# -- toy workload ---------------------------------------------------------------

def leaf(n):
    total = 0
    for i in range(n):
        total += i
    return total


def middle():
    return leaf(400) + leaf(400)


def top():
    s = 0
    for _ in range(5):
        s += middle()
    return s + leaf(10)


def recurse(n):
    if n <= 0:
        return 0
    return 1 + recurse(n - 1)


def ping(n):
    return 0 if n <= 0 else pong(n - 1)


def pong(n):
    return ping(n - 1)


class FakeClock:
    """Advances one second per reading: exact-mode tests become exact."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


def analyzed(func, *args, **profiler_kw):
    result, data, syms = profile_call(func, *args, **profiler_kw)
    return result, analyze(data, syms)


class TestArcs:
    def test_call_counts(self):
        _, profile = analyzed(top)
        entry = profile.entry("middle")
        assert entry.ncalls == 5
        parents = {p.name: p.count for p in entry.parents}
        assert parents == {"top": 5}

    def test_multiple_callers_split(self):
        _, profile = analyzed(top)
        entry = profile.entry("leaf")
        parents = {p.name: p.count for p in entry.parents}
        assert parents == {"middle": 10, "top": 1}
        assert entry.ncalls == 11

    def test_entry_function_is_spontaneous(self):
        # profile_call's own frame is profiler-internal, so the profiled
        # function's caller is unknown — exactly a spontaneous arc.
        _, profile = analyzed(top)
        entry = profile.entry("top")
        assert entry.ncalls == 1
        assert entry.parents[0].name is None

    def test_self_recursion(self):
        _, profile = analyzed(recurse, 10)
        entry = profile.entry("recurse")
        assert entry.ncalls == 1
        assert entry.self_calls == 10
        assert profile.numbered.cycles == []

    def test_mutual_recursion_forms_cycle(self):
        _, profile = analyzed(ping, 9)
        assert len(profile.numbered.cycles) == 1
        members = set(profile.numbered.cycles[0].members)
        assert members == {"ping", "pong"}

    def test_builtin_calls_recorded(self):
        def uses_builtins():
            return sum([1, 2, 3]) + len("abcd")

        _, profile = analyzed(uses_builtins)
        entry = next(
            e for e in profile.graph_entries if e.name.endswith("uses_builtins")
        )
        children = {c.name for c in entry.children}
        assert "<sum>" in children
        assert "<len>" in children


class TestExactTiming:
    def test_fake_clock_attribution(self):
        # With a clock advancing 1s per event, a leaf call's body is
        # exactly the one interval between its call and return events.
        def quiet_leaf():
            pass

        def caller():
            quiet_leaf()
            quiet_leaf()

        profiler = Profiler(clock=FakeClock())
        with profiler:
            caller()
        data = profiler.profile_data()
        syms = profiler.symbol_table()
        profile = analyze(data, syms)
        leaf_entry = profile.entry("TestExactTiming.test_fake_clock_attribution.<locals>.quiet_leaf")
        assert leaf_entry.self_seconds == pytest.approx(2.0)
        assert leaf_entry.ncalls == 2

    def test_real_clock_finds_the_hot_function(self):
        _, profile = analyzed(top)
        flat = profile.flat_entries
        hot = [f.name for f in flat[:2]]
        assert "leaf" in hot  # the loops live in leaf

    def test_descendant_time_flows_up(self):
        # The profiled entry point inherits (almost) all program time;
        # a little is billed to the frames that were live at enable time.
        _, profile = analyzed(top)
        entry = profile.entry("top")
        assert entry.percent > 70.0
        assert entry.child_seconds > entry.self_seconds


class TestSampledModes:
    def _busy(self, ms=60):
        import time

        def spin():
            deadline = time.process_time() + ms / 1000.0
            x = 0
            while time.process_time() < deadline:
                x += 1
            return x

        return spin

    def test_signal_mode_samples_cpu_time(self):
        spin = self._busy()
        profiler = Profiler(mode="signal", interval=0.002)
        with profiler:
            spin()
        data = profiler.profile_data()
        assert data.total_ticks >= 10
        profile = analyze(data, profiler.symbol_table())
        spin_entry = next(
            e for e in profile.graph_entries if "spin" in e.name
        )
        assert spin_entry.percent > 60.0

    def test_thread_mode_samples(self):
        spin = self._busy()
        profiler = Profiler(mode="thread", interval=0.002)
        with profiler:
            spin()
        data = profiler.profile_data()
        assert data.total_ticks >= 5

    def test_arc_counts_identical_across_modes(self):
        for mode in ("exact", "thread"):
            _, data, syms = profile_call(top, mode=mode)
            profile = analyze(data, syms)
            assert profile.entry("middle").ncalls == 5


class TestLifecycle:
    def test_double_enable_rejected(self):
        p = Profiler()
        p.enable()
        try:
            with pytest.raises(ProfilerError, match="already enabled"):
                p.enable()
        finally:
            p.disable()

    def test_extract_while_enabled_rejected(self):
        p = Profiler()
        p.enable()
        try:
            with pytest.raises(ProfilerError, match="disable"):
                p.profile_data()
        finally:
            p.disable()

    def test_extract_without_ever_enabling_rejected(self):
        with pytest.raises(ProfilerError, match="never enabled"):
            Profiler().profile_data()

    def test_disable_is_idempotent(self):
        p = Profiler()
        p.enable()
        p.disable()
        p.disable()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ProfilerError, match="unknown mode"):
            Profiler(mode="psychic")

    def test_exception_in_block_still_disables(self):
        p = Profiler()
        with pytest.raises(ValueError):
            with p:
                raise ValueError("boom")
        # profiler must be disabled and extractable
        assert p.profile_data() is not None


class TestMultiWindow:
    def test_enable_disable_accumulates(self):
        # The moncontrol workflow at the Python level: several windows
        # on one profiler accumulate arcs and time.
        p = Profiler()
        with p:
            top()
        first = p.profile_data().total_calls
        p.enable()
        top()
        p.disable()
        second = p.profile_data()
        assert second.total_calls > first
        profile = analyze(second, p.symbol_table())
        assert profile.entry("middle").ncalls == 10  # 5 per window

    def test_unknown_callee_kept_on_request(self):
        # keep_unknown surfaces arcs whose callee has no symbol — here
        # we truncate the symbol table to force the situation.
        from repro.core import AnalysisOptions, SymbolTable

        _, data, syms = profile_call(top)
        keep = [s for s in syms if s.name in ("top", "middle")]
        truncated = SymbolTable(keep)
        profile = analyze(
            data, truncated, AnalysisOptions(keep_unknown=True)
        )
        unknowns = [
            e.name for e in profile.graph_entries
            if e.name.startswith("<unknown:0x")
        ]
        assert unknowns  # leaf & friends resolved to unknown callees


class TestGmonInterop:
    def test_pyprof_data_roundtrips_through_gmon(self, tmp_path):
        _, data, syms = profile_call(top)
        gmon = tmp_path / "gmon.out"
        symf = tmp_path / "gmon.syms"
        write_gmon(data, gmon)
        syms.save(symf)
        from repro.core.symbols import SymbolTable

        profile = analyze(read_gmon(gmon), SymbolTable.load(symf))
        assert profile.entry("middle").ncalls == 5
