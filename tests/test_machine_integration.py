"""End-to-end tests: VM programs through the whole gprof pipeline."""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.machine import (
    assemble,
    run_profiled,
    run_unprofiled,
    static_call_graph,
)
from repro.machine.programs import PROGRAMS, abstraction, dispatch, fib, netcycle, skewed


def profile_program(source, name="prog", **analysis_opts):
    cpu, data = run_profiled(source, name=name)
    exe = assemble(source, name=name, profile=True)
    options = AnalysisOptions(**analysis_opts) if analysis_opts else None
    return cpu, analyze(data, exe.symbol_table(), options)


class TestAllPrograms:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_profiling_preserves_program_output(self, name):
        src = PROGRAMS[name]()
        assert run_profiled(src)[0].output == run_unprofiled(src).output

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_profile_analyzes_cleanly(self, name):
        cpu, profile = profile_program(PROGRAMS[name](), name)
        assert profile.total_seconds > 0
        assert profile.graph_entries
        # main is on top: everything is charged to it or its cycle.
        top = profile.graph_entries[0]
        assert top.percent == pytest.approx(100.0, abs=1.0)


class TestFib:
    def test_self_recursion_bookkeeping(self):
        cpu, profile = profile_program(fib(12), "fib")
        entry = profile.entry("fib")
        assert entry.ncalls == 1  # one external call, from main
        assert entry.self_calls > 100  # the recursive storm
        assert cpu.output == [144]

    def test_fib_not_a_cycle(self):
        _, profile = profile_program(fib(10), "fib")
        assert profile.numbered.cycles == []


class TestAbstraction:
    def test_flat_profile_diffuses_but_graph_reattributes(self):
        _, profile = profile_program(abstraction(), "abstraction")
        # The write sink plus format routines own most self time...
        flat_top = profile.flat_entries[0].name
        assert flat_top in {"format1", "format2", "write"}
        # ...but the call graph charges each calc the cost it caused.
        for calc in ("calc1", "calc2", "calc3"):
            entry = profile.entry(calc)
            assert entry.child_seconds > entry.self_seconds

    def test_calc2_and_calc3_share_format2(self):
        _, profile = profile_program(abstraction(), "abstraction")
        entry = profile.entry("format2")
        parents = {p.name: p for p in entry.parents}
        assert set(parents) == {"calc2", "calc3"}
        # equal call counts → equal halves of format2's total.
        assert parents["calc2"].count == parents["calc3"].count
        assert parents["calc2"].self_share == pytest.approx(
            parents["calc3"].self_share
        )


class TestDispatch:
    def test_single_site_multiple_callees_counts(self):
        cpu, profile = profile_program(dispatch(rounds=25), "dispatch")
        entry = profile.entry("invoke")
        children = {c.name: c for c in entry.children}
        assert set(children) == {"handler_a", "handler_b", "handler_c"}
        assert all(c.count == 25 for c in children.values())

    def test_hash_collisions_recorded(self):
        src = dispatch(rounds=25)
        exe = assemble(src, profile=True)
        from repro.machine import CPU, Monitor, MonitorConfig

        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc))
        CPU(exe, mon).run()
        # The CALLI site in invoke collides; every other site does not.
        assert mon.stats.collisions > 0
        assert mon.stats.mean_probes < 2.0


class TestNetcycle:
    def test_cycle_hides_subsystem_costs(self):
        _, profile = profile_program(netcycle(), "netcycle")
        assert len(profile.numbered.cycles) == 1
        members = set(profile.numbered.cycles[0].members)
        assert {"ip_input", "tcp_output"} <= members

    def test_arc_removal_restores_attribution(self):
        _, profile = profile_program(
            netcycle(), "netcycle", auto_break_cycles=True
        )
        assert profile.numbered.cycles == []
        removed = profile.removed_arcs
        assert [(r.caller, r.callee) for r in removed] == [
            ("ip_output", "ip_input")
        ]
        # With the loopback cut, ip_input's entry accumulates the whole
        # downstream pipeline's time.
        entry = profile.entry("ip_input")
        assert entry.child_seconds > entry.self_seconds


class TestSkewedPitfall:
    def test_average_time_assumption_misattributes(self):
        """The documented pitfall: per-call costs differ wildly, so the
        caller making many cheap calls is billed most of the callee's
        time even though the expensive call came from elsewhere."""
        _, profile = profile_program(
            skewed(cheap_calls=99, dear_calls=1, dear_work=99), "skewed"
        )
        entry = profile.entry("work_n")
        parents = {p.name: p for p in entry.parents}
        cheap = parents["cheap_caller"]
        dear = parents["dear_caller"]
        # Ground truth: both callers cause ~half the work (99×1 vs 1×99)…
        # but gprof bills by call count: 99/100 vs 1/100.
        assert cheap.count == 99
        assert dear.count == 1
        assert cheap.self_share > 50 * dear.self_share


class TestStaticAugmentation:
    def test_uncalled_routine_shows_with_zero_arc(self):
        src = """
.func main
    PUSH 1
    JNZ skip
    CALL rare
skip:
    HALT
.end
.func rare
    WORK 50
    RET
.end
"""
        cpu, data = run_profiled(src, name="rare")
        exe = assemble(src, name="rare", profile=True)
        profile = analyze(
            data,
            exe.symbol_table(),
            AnalysisOptions(static_arcs=sorted(static_call_graph(exe))),
        )
        line = next(
            c for c in profile.entry("main").children if c.name == "rare"
        )
        assert line.count == 0
        assert profile.never_called == []  # rare now appears in the graph


class TestOverheadBand:
    def test_realistic_programs_within_paper_band(self):
        """§7: 'It adds only five to thirty percent execution overhead'.

        Checked on the realistic workloads; call-only microbenchmarks
        legitimately exceed the band and compute-bound ones fall below.
        """
        for name in ("abstraction", "codegen", "netcycle", "deep", "skewed"):
            src = PROGRAMS[name]()
            profiled = run_profiled(src)[0].cycles
            plain = run_unprofiled(src).cycles
            overhead = (profiled - plain) / plain
            assert 0.05 <= overhead <= 0.30, (name, overhead)

    def test_compute_bound_below_band(self):
        src = PROGRAMS["compute_heavy"]()
        overhead = (
            run_profiled(src)[0].cycles - run_unprofiled(src).cycles
        ) / run_unprofiled(src).cycles
        assert overhead < 0.05
