"""Tests for the synthetic address space."""

from repro.pyprof.addresses import FUNC_SIZE, AddressSpace


class TestAllocation:
    def test_blocks_are_disjoint_and_ordered(self):
        space = AddressSpace()
        a = space.entry("k1", "f")
        b = space.entry("k2", "g")
        assert a == 0
        assert b == FUNC_SIZE
        assert space.high_pc == 2 * FUNC_SIZE

    def test_entry_is_idempotent(self):
        space = AddressSpace()
        assert space.entry("k", "f") == space.entry("k", "f")
        assert len(space) == 1

    def test_same_name_different_keys_disambiguated(self):
        space = AddressSpace()
        space.entry("k1", "f")
        space.entry("k2", "f")
        names = {s.name for s in space.symbol_table()}
        assert names == {"f", "f#2"}

    def test_name_of(self):
        space = AddressSpace()
        space.entry("k", "f")
        assert space.name_of("k") == "f"
        assert space.name_of("zzz") is None


class TestCallSites:
    def test_call_site_inside_callers_block(self):
        space = AddressSpace()
        base = space.entry("k", "f")
        for offset in (0, 1, 17, FUNC_SIZE, 5 * FUNC_SIZE + 3):
            site = space.call_site("k", "f", offset)
            assert base < site < base + FUNC_SIZE

    def test_distinct_offsets_distinct_sites(self):
        space = AddressSpace()
        s1 = space.call_site("k", "f", 10)
        s2 = space.call_site("k", "f", 12)
        assert s1 != s2

    def test_negative_offset_clamped(self):
        space = AddressSpace()
        site = space.call_site("k", "f", -5)
        assert site == space.entry("k", "f") + 1


class TestSymbolTable:
    def test_symbols_cover_blocks_exactly(self):
        space = AddressSpace()
        space.entry("k1", "f", module="m.py")
        space.entry("k2", "g")
        table = space.symbol_table()
        f = table.by_name("f")
        assert (f.address, f.end, f.module) == (0, FUNC_SIZE, "m.py")
        assert table.find(FUNC_SIZE + 5).name == "g"

    def test_empty_space(self):
        assert len(AddressSpace().symbol_table()) == 0
