"""Cross-validation of the Python profiler against cProfile.

The stdlib's deterministic profiler sees the same call events we do;
its call counts are ground truth for our arc bookkeeping, and its
total time should roughly agree with our exact-mode total.
"""

import cProfile
import pstats

import pytest

from repro.core import analyze
from repro.pyprof import profile_call


def fanout(n):
    return sum(unit(i) for i in range(n))


def unit(i):
    return (i * i) % 7


def wrapper():
    a = fanout(120)
    b = fanout(80)
    return a + b


def _cprofile_counts(func):
    prof = cProfile.Profile()
    prof.enable()
    func()
    prof.disable()
    stats = pstats.Stats(prof)
    counts = {}
    for (filename, lineno, name), (cc, nc, tt, ct, callers) in stats.stats.items():
        counts[name] = counts.get(name, 0) + nc
    return counts


class TestAgainstCProfile:
    def test_call_counts_match(self):
        truth = _cprofile_counts(wrapper)
        _, data, syms = profile_call(wrapper)
        profile = analyze(data, syms)
        for name in ("fanout", "unit"):
            entry = profile.entry(name)
            assert entry is not None
            ours = entry.ncalls + entry.self_calls
            assert ours == truth[name], name

    def test_caller_split_matches(self):
        _, data, syms = profile_call(wrapper)
        profile = analyze(data, syms)
        parents = {p.name: p.count for p in profile.entry("fanout").parents}
        assert parents == {"wrapper": 2}
        # unit's caller is the generator expression frame inside fanout
        # — frame-accurate, which cProfile agrees with.
        unit_parents = {p.name: p.count for p in profile.entry("unit").parents}
        assert unit_parents == {"fanout.<locals>.<genexpr>": 200}

    def test_total_time_plausible(self):
        import time

        start = time.perf_counter()
        _, data, syms = profile_call(wrapper)
        wall = time.perf_counter() - start
        # exact-mode total is the instrumented execution's own time —
        # bounded by the instrumented wall clock.
        assert 0 < data.histogram.total_time <= wall * 1.5


class TestDeterministicInvariants:
    def test_counts_stable_across_runs(self):
        profiles = []
        for _ in range(2):
            _, data, syms = profile_call(wrapper)
            profile = analyze(data, syms)
            profiles.append(
                {
                    e.name: (e.ncalls, e.self_calls)
                    for e in profile.graph_entries
                    if e.name in ("wrapper", "fanout", "unit")
                }
            )
        assert profiles[0] == profiles[1]

    def test_flat_times_sum_to_total(self):
        _, data, syms = profile_call(wrapper)
        profile = analyze(data, syms)
        assert sum(f.self_seconds for f in profile.flat_entries) == pytest.approx(
            profile.total_seconds, rel=1e-6
        )
