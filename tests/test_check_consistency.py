"""Tests for gmon-versus-executable consistency checking (GP3xx)."""

import pytest

from repro.check import check_executable
from repro.check.consistency import (
    check_arc_records,
    check_histogram_geometry,
    check_mass_agreement,
    consistency_passes,
)
from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.machine import assemble, run_profiled

SRC = ".func main\n CALL f\n HALT\n.end\n.func f\n WORK 5000\n RET\n.end\n"


@pytest.fixture()
def fixture():
    exe = assemble(SRC, name="t", profile=True)
    _, data = run_profiled(SRC, name="t")
    return exe, data


def codes(diags):
    return sorted({d.code for d in diags})


class TestArcRecords:
    def test_fresh_profile_is_clean(self, fixture):
        exe, data = fixture
        assert consistency_passes(exe, data) == []

    def test_non_call_site_gets_gp301(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        data.arcs.append(RawArc(f.entry, f.entry, 3))  # MCOUNT, not CALL
        assert codes(check_arc_records(exe, data)) == ["GP301"]

    def test_mid_body_callee_gets_gp302(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        data.arcs.append(RawArc(0, f.entry + 4, 2))
        assert codes(check_arc_records(exe, data)) == ["GP302"]

    def test_unprofiled_callee_gets_gp302(self, fixture):
        exe, data = fixture
        src = (".func main\n CALL f\n HALT\n.end\n"
               ".func f noprofile\n RET\n.end\n")
        exe2 = assemble(src, name="t2", profile=True)
        f2 = exe2.function_named("f")
        bad = ProfileData(
            Histogram.for_range(exe2.low_pc, exe2.high_pc),
            [RawArc(0, f2.entry, 1)],
        )
        assert codes(check_arc_records(exe2, bad)) == ["GP302"]

    def test_call_site_outside_text_gets_gp303(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        data.arcs.append(RawArc(exe.high_pc + 8, f.entry, 1))
        assert codes(check_arc_records(exe, data)) == ["GP303"]

    def test_misaligned_call_site_gets_gp303(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        data.arcs.append(RawArc(6, f.entry, 1))
        assert codes(check_arc_records(exe, data)) == ["GP303"]

    def test_call_target_mismatch_gets_gp307(self, fixture):
        exe, data = fixture
        main = exe.function_named("main")
        call_site = main.entry + 4  # MCOUNT, then CALL f
        tampered = ProfileData(
            data.histogram.copy(), [RawArc(call_site, main.entry, 5)]
        )
        assert codes(check_arc_records(exe, tampered)) == ["GP307"]

    def test_spontaneous_marker_is_exempt(self, fixture):
        exe, data = fixture
        # from_pc 0 is the file format's spontaneous convention; the
        # instruction at address 0 (main's MCOUNT) is not a call site.
        assert any(a.from_pc == 0 for a in data.arcs)
        assert check_arc_records(exe, data) == []


class TestHistogramGeometry:
    def test_bounds_beyond_text_get_gp305(self, fixture):
        exe, data = fixture
        hist = Histogram(0, exe.high_pc + 8, [0] * (exe.high_pc + 8))
        bad = ProfileData(hist, list(data.arcs))
        assert "GP305" in codes(check_histogram_geometry(exe, bad))

    def test_mass_beyond_text_gets_gp304(self, fixture):
        exe, data = fixture
        hist = Histogram(0, exe.high_pc + 8, [0] * (exe.high_pc + 8))
        hist.counts[exe.high_pc + 4] = 7
        bad = ProfileData(hist, list(data.arcs))
        assert codes(check_histogram_geometry(exe, bad)) == ["GP304", "GP305"]

    def test_subrange_histogram_is_accepted(self, fixture):
        exe, data = fixture
        hist = Histogram.for_range(0, exe.high_pc // 2)
        sub = ProfileData(hist, [])
        assert check_histogram_geometry(exe, sub) == []


class TestMassAgreement:
    def test_sampled_but_never_called_gets_gp306(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        stripped = ProfileData(
            data.histogram.copy(),
            [a for a in data.arcs if a.self_pc != f.entry],
        )
        diags = check_mass_agreement(exe, stripped)
        assert codes(diags) == ["GP306"]
        assert diags[0].routine == "f"

    def test_called_but_never_sampled_is_fine(self, fixture):
        # Cheap routines legitimately record calls without samples.
        exe, data = fixture
        quiet = ProfileData(
            Histogram.for_range(exe.low_pc, exe.high_pc), list(data.arcs)
        )
        assert check_mass_agreement(exe, quiet) == []


class TestSeededAcceptance:
    """ISSUE acceptance: corrupted gmon arcs/call sites map to GP3xx."""

    def test_corrupted_gmon_yields_gp3xx_only(self, fixture):
        exe, data = fixture
        f = exe.function_named("f")
        data.arcs.append(RawArc(f.entry, f.entry, 3))
        data.arcs.append(RawArc(0, f.entry + 4, 2))
        data.arcs.append(RawArc(exe.high_pc + 8, f.entry, 1))
        report = check_executable(exe, [data])
        fired = report.codes()
        assert {"GP301", "GP302", "GP303"} <= fired
        assert all(c.startswith("GP3") for c in fired)
