"""Tests for the VM interpreter."""

import pytest

from repro.errors import MachineError
from repro.machine import CPU, Monitor, MonitorConfig, assemble


def run_source(src, **kw):
    cpu = CPU(assemble(src, **kw))
    cpu.run()
    return cpu


class TestArithmetic:
    @pytest.mark.parametrize(
        "body, expected",
        [
            ("PUSH 2\n PUSH 3\n ADD", 5),
            ("PUSH 7\n PUSH 3\n SUB", 4),
            ("PUSH 4\n PUSH 5\n MUL", 20),
            ("PUSH 17\n PUSH 5\n DIV", 3),
            ("PUSH -17\n PUSH 5\n DIV", -3),  # truncation toward zero
            ("PUSH 17\n PUSH 5\n MOD", 2),
            ("PUSH -17\n PUSH 5\n MOD", -2),  # C-style remainder
            ("PUSH 9\n NEG", -9),
            ("PUSH 3\n PUSH 3\n EQ", 1),
            ("PUSH 3\n PUSH 4\n NE", 1),
            ("PUSH 3\n PUSH 4\n LT", 1),
            ("PUSH 4\n PUSH 4\n LE", 1),
            ("PUSH 5\n PUSH 4\n GT", 1),
            ("PUSH 3\n PUSH 4\n GE", 0),
        ],
    )
    def test_binary_ops(self, body, expected):
        cpu = run_source(f".func main\n {body}\n OUT\n HALT\n.end\n")
        assert cpu.output == [expected]

    def test_division_by_zero_faults(self):
        with pytest.raises(MachineError, match="division by zero"):
            run_source(".func main\n PUSH 1\n PUSH 0\n DIV\n HALT\n.end\n")

    def test_stack_underflow_faults(self):
        with pytest.raises(MachineError, match="underflow"):
            run_source(".func main\n POP\n HALT\n.end\n")


class TestStackOps:
    def test_dup_swap(self):
        cpu = run_source(
            ".func main\n PUSH 1\n PUSH 2\n SWAP\n OUT\n OUT\n PUSH 9\n DUP\n OUT\n OUT\n HALT\n.end\n"
        )
        assert cpu.output == [1, 2, 9, 9]


class TestLocalsAndGlobals:
    def test_locals_are_per_frame(self):
        src = """
.func main
    PUSH 11
    STORE 0
    CALL clobber
    LOAD 0
    OUT
    HALT
.end
.func clobber
    PUSH 99
    STORE 0
    RET
.end
"""
        assert run_source(src).output == [11]

    def test_globals_shared(self):
        src = """
.globals 1
.func main
    PUSH 5
    GSTORE 0
    CALL reader
    HALT
.end
.func reader
    GLOAD 0
    OUT
    RET
.end
"""
        assert run_source(src).output == [5]

    def test_global_out_of_range_faults(self):
        with pytest.raises(MachineError, match="global slot"):
            run_source(".func main\n PUSH 1\n GSTORE 7\n HALT\n.end\n")


class TestControlFlow:
    def test_loop_counts(self):
        src = """
.func main
    PUSH 5
    STORE 0
loop:
    LOAD 0
    OUT
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end
"""
        assert run_source(src).output == [5, 4, 3, 2, 1]

    def test_call_and_return_value(self):
        src = """
.func main
    PUSH 20
    PUSH 22
    CALL add2
    OUT
    HALT
.end
.func add2
    STORE 0
    STORE 1
    LOAD 0
    LOAD 1
    ADD
    RET
.end
"""
        assert run_source(src).output == [42]

    def test_indirect_call(self):
        src = """
.func main
    PUSH &f
    CALLI
    OUT
    HALT
.end
.func f
    PUSH 7
    RET
.end
"""
        assert run_source(src).output == [7]

    def test_ret_from_entry_halts(self):
        cpu = run_source(".func main\n RET\n.end\n")
        assert cpu.halted

    def test_call_to_bad_address_faults(self):
        with pytest.raises(MachineError, match="bad address"):
            run_source(".func main\n PUSH 3\n CALLI\n HALT\n.end\n")

    def test_runaway_recursion_faults(self):
        src = ".func main\n CALL main\n.end\n"
        with pytest.raises(MachineError, match="call stack overflow"):
            run_source(src)

    def test_pc_outside_text_faults(self):
        # Fall off the end of the text segment.
        with pytest.raises(MachineError, match="outside text"):
            run_source(".func main\n NOP\n.end\n")


class TestClockAndBudgets:
    def test_cycle_costs_accumulate(self):
        cpu = run_source(".func main\n WORK 100\n HALT\n.end\n")
        # WORK base 1 + 100 extra + HALT 1.
        assert cpu.cycles == 102

    def test_run_max_instructions_resumable(self):
        src = ".func main\n PUSH 1\n PUSH 2\n PUSH 3\n HALT\n.end\n"
        cpu = CPU(assemble(src))
        cpu.run(max_instructions=2)
        assert not cpu.halted
        assert cpu.instructions_executed == 2
        cpu.run()
        assert cpu.halted

    def test_run_max_cycles(self):
        src = ".func main\nloop:\n WORK 9\n JMP loop\n.end\n"
        cpu = CPU(assemble(src))
        cpu.run(max_cycles=100)
        assert 100 <= cpu.cycles <= 111
        assert not cpu.halted

    def test_step_after_halt_faults(self):
        cpu = run_source(".func main\n HALT\n.end\n")
        with pytest.raises(MachineError, match="halted"):
            cpu.step()


class TestSampling:
    def _monitored(self, src, cycles_per_tick):
        exe = assemble(src, profile=True)
        mon = Monitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=cycles_per_tick)
        )
        cpu = CPU(exe, mon)
        cpu.run()
        return cpu, mon

    def test_ticks_land_in_working_routine(self):
        src = """
.func main
    CALL burner
    HALT
.end
.func burner
    WORK 1000
    RET
.end
"""
        cpu, mon = self._monitored(src, cycles_per_tick=10)
        exe = cpu.exe
        times = mon.histogram.assign_samples(exe.symbol_table())
        # Practically all samples must hit 'burner'.
        assert times["burner"] > 0.95 * mon.histogram.total_time

    def test_tick_count_tracks_cycles(self):
        src = ".func main\n WORK 995\n HALT\n.end\n"
        cpu, mon = self._monitored(src, cycles_per_tick=100)
        assert mon.histogram.total_ticks == cpu.cycles // 100

    def test_current_function_helper(self):
        src = ".func main\n NOP\n HALT\n.end\n"
        cpu = CPU(assemble(src))
        assert cpu.current_function == "main"
