"""The uploader client: retry discipline, backoff determinism, dedup keys."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.serve.agent import (
    AgentClient,
    AgentError,
    RetryPolicy,
    content_key,
)


class ScriptedServer:
    """A socket server that answers each connection from a canned script.

    Each script entry is either raw response bytes, or the string
    ``"drop"`` to close the connection without answering (a transport
    failure from the client's point of view).
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests: list[bytes] = []
        self._sock = socket.create_server(("127.0.0.1", 0))
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for step in self.script:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                conn.settimeout(5)
                try:
                    data = b""
                    while b"\r\n\r\n" not in data:
                        data += conn.recv(65536)
                    head, _, rest = data.partition(b"\r\n\r\n")
                    length = 0
                    for line in head.split(b"\r\n"):
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    while len(rest) < length:
                        rest += conn.recv(65536)
                    self.requests.append(head + b"\r\n\r\n" + rest)
                    if step != "drop":
                        conn.sendall(step)
                except OSError:
                    pass
        self._sock.close()

    def close(self):
        try:
            self._sock.close()
        except OSError:
            pass


def response(status: int, body: bytes, extra: str = "") -> bytes:
    reason = {200: "OK", 429: "Too Many Requests", 422: "Unprocessable",
              500: "Internal Server Error", 503: "Unavailable"}[status]
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Length: {len(body)}\r\n{extra}"
        "Connection: close\r\n\r\n"
    ).encode() + body


OK = response(200, b'{"status": "merged", "seq": 3, "salvaged": false}')


def client_for(server, retries=3) -> AgentClient:
    sleeps: list[float] = []
    client = AgentClient(
        "127.0.0.1", server.port, timeout=5,
        policy=RetryPolicy(retries=retries, base_delay=0.01, seed=7),
        sleep=sleeps.append,
    )
    client.recorded_sleeps = sleeps
    return client


class TestBackoffSchedule:
    def test_deterministic_for_a_seed(self):
        a = RetryPolicy(retries=5, seed=123).delays()
        b = RetryPolicy(retries=5, seed=123).delays()
        assert a == b

    def test_different_seeds_differ(self):
        assert RetryPolicy(seed=1).delays() != RetryPolicy(seed=2).delays()

    def test_exponential_and_capped(self):
        policy = RetryPolicy(retries=8, base_delay=0.1, max_delay=1.0, seed=0)
        delays = policy.delays()
        assert len(delays) == 8
        # jitter keeps every delay within [0.5, 1.0] x the raw value
        for i, d in enumerate(delays):
            raw = min(1.0, 0.1 * (2 ** i))
            assert raw * 0.5 <= d <= raw
        assert max(delays) <= 1.0


class TestUpload:
    def test_success_first_try(self):
        server = ScriptedServer([OK])
        try:
            result = client_for(server).upload("t1", b"gmon-bytes")
            assert result.status == "merged"
            assert result.seq == 3
            assert result.attempts == 1
        finally:
            server.close()

    def test_idempotency_key_sent_by_default(self):
        server = ScriptedServer([OK])
        try:
            blob = b"gmon-bytes"
            client_for(server).upload("t1", blob)
            head = server.requests[0].lower()
            assert f"x-idempotency-key: {content_key(blob)}".encode() in head
        finally:
            server.close()

    def test_explicit_empty_key_disables_dedup(self):
        server = ScriptedServer([OK])
        try:
            client_for(server).upload("t1", b"gmon-bytes", key="")
            assert b"x-idempotency-key" not in server.requests[0].lower()
        finally:
            server.close()

    def test_retries_transport_failures_then_succeeds(self):
        server = ScriptedServer(["drop", "drop", OK])
        try:
            client = client_for(server)
            result = client.upload("t1", b"gmon-bytes")
            assert result.attempts == 3
            assert len(client.recorded_sleeps) == 2
            # the sleeps are exactly the policy's schedule
            assert client.recorded_sleeps == client.policy.delays()[:2]
        finally:
            server.close()

    def test_retries_429_and_honors_retry_after(self):
        server = ScriptedServer([
            response(429, b'{"error": "busy"}', "Retry-After: 2\r\n"),
            OK,
        ])
        try:
            client = client_for(server)
            result = client.upload("t1", b"gmon-bytes")
            assert result.attempts == 2
            # Retry-After: 2 beats the tiny scheduled backoff
            assert client.recorded_sleeps == [2.0]
        finally:
            server.close()

    def test_retries_5xx(self):
        server = ScriptedServer([response(500, b"{}"), OK])
        try:
            assert client_for(server).upload("t1", b"x").attempts == 2
        finally:
            server.close()

    def test_permanent_rejection_not_retried(self):
        server = ScriptedServer([
            response(422, b'{"status": "quarantined", '
                          b'"reason": "unsalvageable upload"}'),
            OK,  # must never be consumed
        ])
        try:
            client = client_for(server)
            with pytest.raises(AgentError) as err:
                client.upload("t1", b"x")
            assert err.value.status == 422
            assert err.value.attempts == 1
            assert "unsalvageable" in str(err.value)
            assert len(server.requests) == 1
        finally:
            server.close()

    def test_exhausted_retries_raise(self):
        server = ScriptedServer(["drop"] * 4)
        try:
            client = client_for(server, retries=3)
            with pytest.raises(AgentError) as err:
                client.upload("t1", b"x")
            assert err.value.attempts == 4
            assert "transport failure" in str(err.value)
        finally:
            server.close()

    def test_no_server_at_all(self):
        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        client = AgentClient(
            "127.0.0.1", port, timeout=1,
            policy=RetryPolicy(retries=1, base_delay=0.001),
            sleep=lambda _s: None,
        )
        with pytest.raises(AgentError):
            client.upload("t1", b"x")

    def test_content_key_stable(self):
        assert content_key(b"abc") == content_key(b"abc")
        assert content_key(b"abc") != content_key(b"abd")
