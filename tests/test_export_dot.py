"""Tests for the JSON export and the DOT rendering."""

import json

import pytest

from repro.core.export import FORMAT, profile_to_dict, save_profile_json
from repro.report.dot import to_dot

from tests.test_figure4 import figure4_profile


@pytest.fixture(scope="module")
def profile():
    return figure4_profile()


class TestJsonExport:
    def test_envelope_and_totals(self, profile):
        data = profile_to_dict(profile)
        assert data["format"] == FORMAT
        assert data["total_seconds"] == pytest.approx(506 / 60)

    def test_entries_complete(self, profile):
        data = profile_to_dict(profile)
        by_name = {e["name"]: e for e in data["entries"]}
        example = by_name["EXAMPLE"]
        assert example["percent"] == pytest.approx(41.5, abs=0.05)
        assert example["ncalls"] == 10
        assert example["self_calls"] == 4
        parents = {p["name"]: p for p in example["parents"]}
        assert parents["CALLER1"]["count"] == 4
        children = {c["name"]: c for c in example["children"]}
        assert children["SUB1"]["cycle"] == 1

    def test_cycles_and_flat(self, profile):
        data = profile_to_dict(profile)
        assert data["cycles"] == [
            {"number": 1, "members": ["SUB1", "SUB4"]}
        ]
        flat_names = [f["name"] for f in data["flat"]]
        assert "EXAMPLE" in flat_names

    def test_json_serializable_roundtrip(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        save_profile_json(profile, path)
        back = json.loads(path.read_text())
        assert back == profile_to_dict(profile)


class TestDot:
    def test_structure(self, profile):
        text = to_dot(profile)
        assert text.startswith("digraph profile {")
        assert text.rstrip().endswith("}")
        assert '"EXAMPLE"' in text
        assert '"CALLER1" -> "EXAMPLE"' in text

    def test_cycle_cluster(self, profile):
        text = to_dot(profile)
        assert "subgraph cluster_cycle1" in text
        assert '"SUB1";' in text

    def test_static_arcs_dashed(self, profile):
        text = to_dot(profile)
        dashed = [l for l in text.splitlines() if "style=dashed" in l]
        assert any("SUB3" in l for l in dashed)

    def test_counts_toggle(self, profile):
        with_counts = to_dot(profile, include_counts=True)
        without = to_dot(profile, include_counts=False)
        assert 'label="20"' in with_counts
        assert 'label="20"' not in without

    def test_min_percent_prunes_nodes_and_arcs(self, profile):
        text = to_dot(profile, min_percent=30.0)
        assert '"SUB2"' not in text
        assert '"EXAMPLE"' in text

    def test_node_labels_have_times(self, profile):
        text = to_dot(profile)
        assert "self 0.50s" in text  # EXAMPLE's label
