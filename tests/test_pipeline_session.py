"""ProfileSession: the shared frontend plumbing, plus the O(1) lookups.

Covers the loader paths every CLI now rides (image loading, strict and
salvaging reads, linting, cache-shared analysis) and the satellite
regression tests pinning name lookups to dict indexes instead of
linear scans.
"""

from __future__ import annotations

import pytest

from repro.core import AnalysisOptions, analyze
from repro.errors import ReproError
from repro.gmon import dumps_gmon, write_gmon
from repro.pipeline import AnalysisCache, ProfileSession

from tests.helpers import make_symbols, profile_data
from tests.pipeline_golden import canned_profile_data


class NoIterList(list):
    """A list that refuses to be scanned — the O(1) tripwire."""

    def __iter__(self):
        raise AssertionError("linear scan detected: lookup iterated the list")


@pytest.fixture()
def vm_setup(tmp_path):
    exe, data = canned_profile_data("fib")
    image = tmp_path / "fib.vmexe"
    exe.save(image)
    gmons = []
    for i in range(3):
        path = tmp_path / f"gmon.{i}"
        write_gmon(data, path)
        gmons.append(str(path))
    return exe, data, str(image), gmons


# -- loading ----------------------------------------------------------------


def test_from_image_loads_vm_executable(vm_setup):
    exe, _data, image, _gmons = vm_setup
    session = ProfileSession.from_image(image)
    assert session.exe is not None
    assert session.exe.name == exe.name
    assert set(s.name for s in session.symbols) == set(
        s.name for s in exe.symbol_table()
    )


def test_from_image_loads_bare_symbol_table(tmp_path):
    symbols = make_symbols("main", "leaf")
    path = tmp_path / "syms.json"
    symbols.save(path)
    session = ProfileSession.from_image(str(path))
    assert session.exe is None
    assert "main" in session.symbols and "leaf" in session.symbols


def test_load_merges_inputs_deterministically(vm_setup):
    _exe, data, image, gmons = vm_setup
    session = ProfileSession.from_image(image)
    merged = session.load(gmons)
    assert merged.runs == 3 * data.runs
    assert session.paths == gmons
    # Strict reads of clean files leave no degradation evidence behind.
    assert session.salvage_reports == []
    assert session.gmon_diagnostics == []


def test_load_salvage_collects_reports_and_diagnostics(vm_setup, tmp_path):
    _exe, data, image, gmons = vm_setup
    blob = dumps_gmon(data)
    corrupt = tmp_path / "gmon.corrupt"
    corrupt.write_bytes(blob[: len(blob) - 7])  # tear the arc table
    session = ProfileSession.from_image(image)
    merged = session.load([gmons[0], str(corrupt)], salvage=True)
    assert merged.warnings  # degraded input stays visibly degraded
    assert [p for p, _ in session.salvage_reports] == [
        gmons[0], str(corrupt)
    ]
    assert any(not r.clean for _, r in session.salvage_reports)
    assert any(d.code.startswith("GP4") for d in session.gmon_diagnostics)


def test_read_each_keeps_profiles_separate(vm_setup):
    _exe, data, image, gmons = vm_setup
    session = ProfileSession.from_image(image)
    profiles = session.read_each(gmons)
    assert len(profiles) == 3
    assert all(p.runs == data.runs for p in profiles)


# -- linting ----------------------------------------------------------------


def test_lint_requires_an_executable(tmp_path):
    symbols = make_symbols("main")
    path = tmp_path / "syms.json"
    symbols.save(path)
    session = ProfileSession.from_image(str(path))
    with pytest.raises(ReproError):
        session.lint([], [])


def test_lint_folds_in_reader_diagnostics(vm_setup, tmp_path):
    _exe, data, image, gmons = vm_setup
    blob = dumps_gmon(data)
    corrupt = tmp_path / "gmon.corrupt"
    corrupt.write_bytes(blob[: len(blob) - 7])
    session = ProfileSession.from_image(image)
    profiles = session.read_each([str(corrupt)], salvage=True)
    report = session.lint(profiles, [str(corrupt)])
    assert any(d.code.startswith("GP4") for d in report)


# -- analysis and the session cache ----------------------------------------


def test_session_analyze_shares_one_cache(vm_setup):
    _exe, _data, image, gmons = vm_setup
    session = ProfileSession.from_image(image)
    data = session.load(gmons)
    first = session.analyze(data)
    second = session.analyze(data)
    assert second is first  # full cache hit returns the shared Profile
    assert session.cache.hits > 0


def test_session_analyze_matches_plain_analyze(vm_setup):
    _exe, _data, image, gmons = vm_setup
    session = ProfileSession.from_image(image)
    data = session.load(gmons)
    options = AnalysisOptions(excluded=["fib"])
    from repro.report import format_flat_profile

    via_session = session.analyze(data, options)
    plain = analyze(data, session.symbols, options)
    assert format_flat_profile(via_session) == format_flat_profile(plain)


def test_merge_only_session_needs_no_image(vm_setup):
    _exe, data, image, gmons = vm_setup
    session = ProfileSession(None)
    merged = session.load(gmons)
    assert merged.runs == 3 * data.runs


# -- satellite: O(1) name lookups -------------------------------------------


def big_profile(n: int = 400):
    names = [f"fn{i:04d}" for i in range(n)]
    symbols = make_symbols(*names)
    arcs = [(names[i], names[i + 1], i + 1) for i in range(n - 1)]
    ticks = {name: 1 for name in names}
    return analyze(profile_data(symbols, arcs, ticks=ticks), symbols), names


def test_profile_lookups_never_scan_the_entry_list():
    profile, names = big_profile()
    profile.graph_entries = NoIterList(profile.graph_entries)
    for name in names:
        idx = profile.index_of(name)
        assert idx is not None
        assert profile.entry(name).name == name
        assert profile.entry(name).index == idx


def test_delta_routine_lookup_is_indexed():
    from repro.core.compare import compare_profiles

    before, names = big_profile()
    after, _ = big_profile()
    delta = compare_profiles(before, after)
    assert delta.routine(names[0]) is not None  # builds the index
    delta.routines = NoIterList(delta.routines)
    for name in names:
        assert delta.routine(name) is not None
    assert delta.routine("missing") is None


def test_baseline_rule_lookup_is_indexed():
    from repro.core.regress import Baseline

    profile, names = big_profile()
    baseline = Baseline.from_profile(profile)
    covered = [rule.name for rule in baseline.rules]
    assert covered
    assert baseline.rule_for(covered[0]) is not None  # builds the index
    baseline.rules = NoIterList(baseline.rules)
    for name in covered:
        assert baseline.rule_for(name) is not None
    assert baseline.rule_for("missing") is None
