"""Fleet-merge robustness: dying workers and lying filesystems.

Satellite regressions for the ingest-service PR:

* a merge worker that crashes (``os._exit``) or hangs mid-chunk must
  cost one bounded timeout, after which the driver re-merges the chunk
  sequentially — never a lost chunk, never an indefinite hang;
* ``expand_inputs`` must survive symlink cycles under ``**`` globs
  (one physical file merges once, whatever path shapes the glob
  reaches it through) and must order matches deterministically.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.fleet import ProfileAccumulator, expand_inputs, tree_reduce
from repro.fleet import reduce as reduce_mod
from repro.gmon import dumps_gmon, parse_gmon_raw, write_gmon

from tests.helpers import make_symbols, profile_data

SYMS = make_symbols("main", "work")

needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=False) != "fork",
    reason="the fault hook reaches workers via the fork start method",
)


def build_fleet(tmp_path, n):
    """``n`` distinct single-run profiles on disk, plus their offline sum."""
    paths = []
    acc = ProfileAccumulator()
    for i in range(n):
        data = profile_data(SYMS, [("main", "work", i + 1)], {"main": i % 3})
        path = tmp_path / f"gmon.{i:03d}"
        write_gmon(data, path)
        paths.append(str(path))
        acc.add_raw(parse_gmon_raw(dumps_gmon(data)))
    return paths, dumps_gmon(acc.result())


@pytest.fixture(autouse=True)
def clear_fault_hook():
    yield
    reduce_mod._chunk_fault_hook = None


class TestWorkerFailure:
    @needs_fork
    def test_crashed_worker_falls_back_sequentially(self, tmp_path):
        paths, reference = build_fleet(tmp_path, 64)
        marker = paths[5]  # lives in the first chunk
        driver_pid = os.getpid()

        def die_on_marker(chunk_paths):
            # only the *worker* dies; the driver's in-process fallback
            # re-runs this hook and must survive it
            if marker in chunk_paths and os.getpid() != driver_pid:
                os._exit(1)  # the bluntest possible worker death

        reduce_mod._chunk_fault_hook = die_on_marker
        data = tree_reduce(paths, jobs=2, worker_timeout=10.0)
        assert dumps_gmon(data) == reference  # nothing lost, nothing doubled
        assert any("re-merged sequentially" in w for w in data.warnings)

    @needs_fork
    def test_hung_worker_times_out(self, tmp_path):
        paths, reference = build_fleet(tmp_path, 64)
        marker = paths[5]
        driver_pid = os.getpid()

        def hang_on_marker(chunk_paths):
            if marker in chunk_paths and os.getpid() != driver_pid:
                import time

                time.sleep(300)

        reduce_mod._chunk_fault_hook = hang_on_marker
        data = tree_reduce(paths, jobs=2, worker_timeout=0.5)
        assert dumps_gmon(data) == reference
        assert any("did not answer within 0.5s" in w for w in data.warnings)

    @needs_fork
    def test_every_worker_dead_still_merges(self, tmp_path):
        paths, reference = build_fleet(tmp_path, 64)
        driver_pid = os.getpid()
        reduce_mod._chunk_fault_hook = (
            lambda _chunk: os.getpid() != driver_pid and os._exit(1)
        )
        data = tree_reduce(paths, jobs=2, worker_timeout=5.0)
        assert dumps_gmon(data) == reference
        assert sum("re-merged sequentially" in w for w in data.warnings) >= 2

    def test_real_parse_errors_still_propagate(self, tmp_path):
        """The timeout fallback must not swallow honest worker errors."""
        paths, _ = build_fleet(tmp_path, 64)
        with open(paths[10], "wb") as f:
            f.write(b"gmon\x01\x00garbage")
        from repro.errors import GmonFormatError, MergeError

        with pytest.raises((GmonFormatError, MergeError)):
            tree_reduce(paths, jobs=2, worker_timeout=30.0)


class TestExpandInputs:
    def test_symlink_cycle_merges_each_file_once(self, tmp_path):
        fleet = tmp_path / "fleet"
        sub = fleet / "a"
        sub.mkdir(parents=True)
        data = profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        write_gmon(data, sub / "gmon.0")
        write_gmon(data, fleet / "gmon.1")
        try:
            os.symlink("..", sub / "loop")
        except OSError:
            pytest.skip("filesystem refuses symlinks")
        paths = expand_inputs([str(fleet / "**" / "gmon.*")])
        # the cycle makes the glob see each file through many path
        # shapes; expansion must keep exactly the two physical files
        assert len(paths) == 2
        assert [os.path.basename(p) for p in paths] == ["gmon.0", "gmon.1"]
        merged = tree_reduce(paths, jobs=1)
        assert merged.runs == 2  # not 40+ phantom copies

    def test_recursive_glob_deterministic_order(self, tmp_path):
        names = ["b/gmon.2", "a/gmon.9", "a/gmon.10", "c/gmon.1"]
        data = profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        for name in names:
            path = tmp_path / name
            path.parent.mkdir(exist_ok=True)
            write_gmon(data, path)
        pattern = str(tmp_path / "**" / "gmon.*")
        first = expand_inputs([pattern])
        assert first == expand_inputs([pattern])  # stable across calls
        assert first == sorted(first)  # lexicographic, not enumeration order

    def test_plain_glob_still_sorted(self, tmp_path):
        data = profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        for i in (3, 1, 2):
            write_gmon(data, tmp_path / f"gmon.{i}")
        paths = expand_inputs([str(tmp_path / "gmon.*")])
        assert [os.path.basename(p) for p in paths] == [
            "gmon.1", "gmon.2", "gmon.3",
        ]

    def test_duplicate_hardlinks_under_recursive_glob(self, tmp_path):
        data = profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        target = tmp_path / "sub" / "gmon.a"
        target.parent.mkdir()
        write_gmon(data, target)
        try:
            os.link(target, tmp_path / "sub" / "gmon.b")
        except OSError:
            pytest.skip("filesystem refuses hard links")
        paths = expand_inputs([str(tmp_path / "**" / "gmon.*")])
        # same inode, two names: the lexicographically first name wins
        assert [os.path.basename(p) for p in paths] == ["gmon.a"]
