"""Tests for the time-sharing machine and the §3.2 measurement argument."""

import pytest

from repro.core import analyze
from repro.errors import MachineError
from repro.machine import CPU, Monitor, MonitorConfig, assemble
from repro.machine.timeshare import ElapsedTimeProfiler, TimeSharedMachine

MEASURED = """
.func main
    PUSH 20
    STORE 0
loop:
    CALL step_work
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func step_work
    WORK 100
    RET
.end
"""

COMPETITOR = """
.func main
    PUSH 60
    STORE 0
loop:
    WORK 100
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end
"""


class TestMachine:
    def test_round_robin_interleaves(self):
        a = CPU(assemble(MEASURED, name="a"))
        b = CPU(assemble(COMPETITOR, name="b"))
        machine = TimeSharedMachine([a, b], quantum=200)
        machine.run()
        assert a.halted and b.halted
        assert machine.context_switches > 2
        assert machine.wall_cycles == a.cycles + b.cycles

    def test_solo_process_wall_equals_process_time(self):
        a = CPU(assemble(MEASURED, name="a"))
        machine = TimeSharedMachine([a], quantum=100)
        machine.run()
        assert machine.wall_cycles == a.cycles

    def test_wall_budget(self):
        a = CPU(assemble(COMPETITOR, name="a"))
        machine = TimeSharedMachine([a], quantum=100)
        machine.run(max_wall_cycles=500)
        assert not a.halted
        assert machine.wall_cycles >= 500

    def test_validation(self):
        with pytest.raises(MachineError):
            TimeSharedMachine([], quantum=10)
        with pytest.raises(MachineError):
            TimeSharedMachine([CPU(assemble(MEASURED))], quantum=0)


class TestElapsedVsSampled:
    """The §3.2 experiment: elapsed-time measurement breaks under
    time-slicing; PC sampling does not."""

    def _run_shared(self):
        exe = assemble(MEASURED, name="measured", profile=True)
        monitor = Monitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10)
        )
        measured = CPU(exe, monitor)
        competitor = CPU(assemble(COMPETITOR, name="noise"))
        machine = TimeSharedMachine([measured, competitor], quantum=150)
        elapsed = ElapsedTimeProfiler(machine.wall_clock)
        measured.tracer = elapsed
        machine.run()
        return exe, measured, monitor, elapsed

    def _run_alone(self):
        exe = assemble(MEASURED, name="measured", profile=True)
        monitor = Monitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10)
        )
        cpu = CPU(exe, monitor)
        machine = TimeSharedMachine([cpu], quantum=150)
        elapsed = ElapsedTimeProfiler(machine.wall_clock)
        cpu.tracer = elapsed
        machine.run()
        return elapsed, monitor, exe

    def test_elapsed_time_inflated_by_time_slicing(self):
        alone_elapsed, _, _ = self._run_alone()
        _, _, _, shared_elapsed = self._run_shared()
        alone = alone_elapsed.mean_wall("step_work")
        shared = shared_elapsed.mean_wall("step_work")
        # sharing the machine inflates measured entry-to-exit time
        assert shared > alone * 1.2

    def test_sampling_unaffected_by_time_slicing(self):
        _, alone_monitor, exe = self._run_alone()
        _, _, shared_monitor, _ = self._run_shared()
        alone_times = alone_monitor.histogram.assign_samples(exe.symbol_table())
        shared_times = shared_monitor.histogram.assign_samples(exe.symbol_table())
        # the sampled profile of the measured process is identical: its
        # own clock only advances while it runs.
        assert shared_times == alone_times

    def test_sampled_profile_analyzes_normally_when_shared(self):
        exe, cpu, monitor, _ = self._run_shared()
        profile = analyze(monitor.mcleanup(), exe.symbol_table())
        assert profile.entry("step_work").ncalls == 20
        assert profile.entry("main").percent == pytest.approx(100.0, abs=1.0)
