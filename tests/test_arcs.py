"""Unit tests for repro.core.arcs."""

import pytest

from repro.core.arcs import Arc, ArcSet, RawArc, symbolize_arcs
from repro.core.symbols import SPONTANEOUS, Symbol, SymbolTable

from tests.helpers import make_symbols


class TestRawArc:
    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            RawArc(0, 4, -1)

    def test_zero_count_marks_static(self):
        assert RawArc(0, 4, 0).count == 0


class TestSymbolize:
    def test_basic_resolution(self):
        syms = make_symbols("a", "b")
        arcs = symbolize_arcs([RawArc(10, 100, 7)], syms)
        assert arcs == [Arc("a", "b", 7, 1, False)]

    def test_multiple_sites_same_pair_merge(self):
        syms = make_symbols("a", "b")
        arcs = symbolize_arcs(
            [RawArc(10, 100, 3), RawArc(20, 100, 4)], syms
        )
        assert len(arcs) == 1
        assert arcs[0].count == 7
        assert arcs[0].sites == 2

    def test_zero_from_pc_is_spontaneous(self):
        syms = make_symbols("a", "b")
        (arc,) = symbolize_arcs([RawArc(0, 100, 2)], syms)
        assert arc.caller == SPONTANEOUS
        assert arc.spontaneous

    def test_from_pc_outside_symbols_is_spontaneous(self):
        # Non-standard calling sequences: callee known, caller not (§3.1).
        syms = make_symbols("a", "b")
        (arc,) = symbolize_arcs([RawArc(99_999, 100, 2)], syms)
        assert arc.caller == SPONTANEOUS
        assert arc.count == 2

    def test_unknown_callee_dropped_by_default(self):
        syms = make_symbols("a")
        assert symbolize_arcs([RawArc(10, 99_999, 2)], syms) == []

    def test_unknown_callee_kept_on_request(self):
        syms = make_symbols("a")
        (arc,) = symbolize_arcs([RawArc(10, 99_999, 2)], syms, keep_unknown=True)
        assert arc.callee.startswith("<unknown:0x")
        assert arc.caller == "a"

    def test_static_flag_survives_merge_only_if_all_static(self):
        syms = make_symbols("a", "b")
        arcs = symbolize_arcs([RawArc(10, 100, 0), RawArc(20, 100, 5)], syms)
        assert arcs[0].static is False
        arcs = symbolize_arcs([RawArc(10, 100, 0), RawArc(20, 100, 0)], syms)
        assert arcs[0].static is True

    def test_call_site_identifies_caller_not_callee_entry(self):
        # A call site near the end of 'a' still belongs to 'a'.
        syms = SymbolTable([Symbol(0, "a", 100), Symbol(100, "b", 200)])
        (arc,) = symbolize_arcs([RawArc(96, 100, 1)], syms)
        assert arc.caller == "a"
        assert arc.callee == "b"


class TestArcSet:
    def test_add_merges_counts(self):
        s = ArcSet([Arc("a", "b", 3)])
        s.add(Arc("a", "b", 4))
        assert s.get("a", "b").count == 7
        assert len(s) == 1

    def test_add_static_noop_when_dynamic_exists(self):
        s = ArcSet([Arc("a", "b", 3)])
        assert s.add_static("a", "b") is False
        assert s.get("a", "b").count == 3

    def test_add_static_adds_zero_count(self):
        s = ArcSet()
        assert s.add_static("a", "b") is True
        arc = s.get("a", "b")
        assert arc.count == 0
        assert arc.static

    def test_remove(self):
        s = ArcSet([Arc("a", "b", 1)])
        assert s.remove("a", "b") is True
        assert s.remove("a", "b") is False
        assert len(s) == 0

    def test_routines_excludes_spontaneous(self):
        s = ArcSet([Arc(SPONTANEOUS, "main", 1), Arc("main", "f", 2)])
        assert s.routines() == {"main", "f"}

    def test_incoming_count(self):
        s = ArcSet([Arc("a", "c", 2), Arc("b", "c", 5), Arc("c", "a", 9)])
        assert s.incoming_count("c") == 7

    def test_contains_and_iter(self):
        s = ArcSet([Arc("a", "b", 1)])
        assert ("a", "b") in s
        assert ("b", "a") not in s
        assert [a.caller for a in s] == ["a"]
