"""Concurrent readers: shared salvage and the stat/read cache race.

Satellite regressions for the ingest-service PR.  Two properties:

* two threads salvaging the *same* damaged gmon file concurrently must
  both succeed with identical recoveries — the salvaging reader holds
  no hidden mutable state;
* two :class:`HeaderCache` users racing a writer that atomically
  rewrites the file *between* their stat and their read must never
  crash and never see torn data: every header any thread observes must
  be one of the versions actually written, and the cache must never
  serve version A's header under version B's stat identity.
"""

from __future__ import annotations

import os
import threading

from repro.fleet.headers import HeaderCache, HeaderKey
from repro.gmon import dumps_gmon, salvage_gmon_bytes, write_gmon
from repro.resilience.atomic import atomic_write_bytes

from tests.helpers import make_symbols, profile_data

SYMS = make_symbols("main", "work", "leaf")


def run_threads(n, fn):
    """Run ``fn(i)`` in ``n`` threads through a start barrier; collect
    results and re-raise the first failure."""
    barrier = threading.Barrier(n)
    results: list[object] = [None] * n
    errors: list[BaseException] = []

    def runner(i):
        barrier.wait()
        try:
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 — reported below
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


class TestConcurrentSalvage:
    def test_two_readers_same_damaged_file(self, tmp_path):
        data = profile_data(
            SYMS, [("main", "work", 3), ("work", "leaf", 1)], {"main": 5}
        )
        blob = dumps_gmon(data)
        damaged = tmp_path / "gmon.damaged"
        damaged.write_bytes(blob[:-15])  # torn arc table

        def salvage(_i):
            with open(damaged, "rb") as f:
                recovered, report = salvage_gmon_bytes(
                    f.read(), source=str(damaged)
                )
            assert not report.clean
            return dumps_gmon(recovered), tuple(report.notes)

        results = run_threads(8, salvage)
        # every thread recovered the identical profile and report
        assert len(set(results)) == 1

    def test_salvage_while_file_rewritten(self, tmp_path):
        """Readers racing a rewriter each see some complete version."""
        blob_a = dumps_gmon(
            profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        )
        blob_b = dumps_gmon(
            profile_data(SYMS, [("main", "leaf", 9)], {"leaf": 4})
        )
        path = tmp_path / "gmon.live"
        path.write_bytes(blob_a)
        stop = threading.Event()

        def rewriter():
            flip = False
            while not stop.is_set():
                atomic_write_bytes(path, blob_b if flip else blob_a)
                flip = not flip

        w = threading.Thread(target=rewriter)
        w.start()
        try:
            def read(_i):
                out = []
                for _ in range(50):
                    with open(path, "rb") as f:
                        recovered, report = salvage_gmon_bytes(f.read())
                    # the rewrite is atomic, so every read is complete
                    assert report.clean
                    out.append(dumps_gmon(recovered))
                return out

            results = run_threads(4, read)
        finally:
            stop.set()
            w.join()
        seen = {b for chunk in results for b in chunk}
        assert seen <= {blob_a, blob_b}


class TestHeaderCacheRace:
    def versions(self, tmp_path):
        """Two layout-distinct versions of one path, plus their keys."""
        v1 = profile_data(
            make_symbols("main", "work"), [("main", "work", 1)], {"main": 1}
        )
        v2 = profile_data(
            make_symbols("main", "work", "leaf", "pad"),
            [("main", "work", 1)], {"main": 1},
        )
        path = tmp_path / "gmon.racing"
        write_gmon(v1, path)
        b1, b2 = dumps_gmon(v1), dumps_gmon(v2)
        from repro.gmon import peek_gmon_header_bytes

        keys = {
            HeaderKey.of(peek_gmon_header_bytes(b1)),
            HeaderKey.of(peek_gmon_header_bytes(b2)),
        }
        return path, b1, b2, keys

    def test_peek_racing_atomic_rewrites(self, tmp_path):
        path, b1, b2, valid_keys = self.versions(tmp_path)
        cache = HeaderCache()
        stop = threading.Event()

        def rewriter():
            flip = True
            while not stop.is_set():
                atomic_write_bytes(path, b2 if flip else b1)
                flip = not flip

        w = threading.Thread(target=rewriter)
        w.start()
        try:
            def peek(_i):
                observed = set()
                for _ in range(200):
                    header = cache.peek(path)  # must never raise
                    observed.add(HeaderKey.of(header))
                return observed

            results = run_threads(4, peek)
        finally:
            stop.set()
            w.join()
        for observed in results:
            # torn data would manifest as a key that matches neither
            # version ever written
            assert observed <= valid_keys

    def test_cache_entry_matches_final_file(self, tmp_path):
        """After the dust settles, a cached hit equals a fresh peek.

        This is the stat-revalidation pin: if peek ever paired version
        A's header with version B's stat identity, the final cached
        answer would disagree with the file on disk.
        """
        path, b1, b2, _keys = self.versions(tmp_path)
        cache = HeaderCache()
        stop = threading.Event()

        def rewriter():
            flip = True
            while not stop.is_set():
                atomic_write_bytes(path, b2 if flip else b1)
                flip = not flip

        w = threading.Thread(target=rewriter)
        w.start()
        try:
            run_threads(4, lambda _i: [cache.peek(path) for _ in range(100)])
        finally:
            stop.set()
            w.join()
        from repro.gmon import peek_gmon_header

        truth = HeaderKey.of(peek_gmon_header(path))
        assert HeaderKey.of(cache.peek(path)) == truth

    def test_unchanged_file_hits_cache(self, tmp_path):
        path, _b1, _b2, _keys = self.versions(tmp_path)
        cache = HeaderCache()
        first = cache.peek(path)
        assert cache.misses == 1
        again = cache.peek(path)
        assert again == first
        assert cache.hits == 1
        assert len(cache) == 1

    def test_concurrent_peeks_distinct_files(self, tmp_path):
        """Many threads, many files, one shared cache: no corruption."""
        data = profile_data(SYMS, [("main", "work", 1)], {"main": 1})
        paths = []
        for i in range(8):
            p = tmp_path / f"gmon.{i}"
            write_gmon(data, p)
            paths.append(p)
        cache = HeaderCache()
        ref = {str(p): HeaderKey.of(cache.peek(p)) for p in paths}
        cache2 = HeaderCache()

        def peek_all(_i):
            return {str(p): HeaderKey.of(cache2.peek(p)) for p in paths}

        for observed in run_threads(8, peek_all):
            assert observed == ref
        assert len(cache2) == len(paths)
