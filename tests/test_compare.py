"""Tests for profile comparison (the §6 iterative workflow)."""

import pytest

from repro.core import analyze
from repro.core.compare import compare_profiles, format_delta
from repro.machine import assemble, run_profiled
from repro.machine.programs import codegen

from tests.helpers import make_symbols, profile_data


def _profile(symbols, arcs, ticks):
    return analyze(profile_data(symbols, arcs, ticks), symbols)


@pytest.fixture()
def before_after():
    symbols = make_symbols("main", "slow", "helper")
    before = _profile(
        symbols,
        [("<spontaneous>", "main", 1), ("main", "slow", 10), ("slow", "helper", 10)],
        {"main": 6, "slow": 120, "helper": 54},
    )
    after = _profile(
        symbols,
        [("<spontaneous>", "main", 1), ("main", "slow", 10), ("slow", "helper", 10)],
        {"main": 6, "slow": 30, "helper": 54},
    )
    return before, after


class TestDelta:
    def test_speedup(self, before_after):
        delta = compare_profiles(*before_after)
        assert delta.total_before == pytest.approx(3.0)
        assert delta.total_after == pytest.approx(1.5)
        assert delta.speedup == pytest.approx(2.0)

    def test_biggest_movement_first(self, before_after):
        delta = compare_profiles(*before_after)
        # main's total also shrinks by 1.5s (it inherits slow), so the
        # top movers are main and slow, ahead of helper (unchanged).
        assert {delta.routines[0].name, delta.routines[1].name} == {
            "main",
            "slow",
        }
        assert delta.routines[-1].name == "helper"

    def test_routine_lookup(self, before_after):
        delta = compare_profiles(*before_after)
        slow = delta.routine("slow")
        assert slow.self_delta == pytest.approx(-1.5)
        assert slow.calls_before == slow.calls_after == 10
        assert delta.routine("missing") is None

    def test_dominating_after(self, before_after):
        delta = compare_profiles(*before_after)
        assert delta.dominating_after(2) == ["main", "slow"]

    def test_added_and_removed_routines(self):
        symbols_b = make_symbols("main", "old_impl")
        symbols_a = make_symbols("main", "new_impl")
        before = _profile(
            symbols_b, [("main", "old_impl", 5)], {"old_impl": 60}
        )
        after = _profile(
            symbols_a, [("main", "new_impl", 5)], {"new_impl": 30}
        )
        delta = compare_profiles(before, after)
        assert delta.routine("old_impl").removed
        assert delta.routine("new_impl").added
        text = format_delta(delta)
        assert "(gone)" in text
        assert "(new)" in text

    def test_format(self, before_after):
        delta = compare_profiles(*before_after)
        text = format_delta(delta)
        assert "speedup 2.00x" in text
        assert "2.00->0.50" in text  # slow's self seconds
        assert "dominating now:" in text


class TestOnRealWorkload:
    def test_parameter_change_shows_up(self):
        # The §6 loop on the codegen program: the 'rehash' cost depends
        # on workload shape; compare two runs and see the movement.
        def run(statements):
            src = codegen(statements=statements)
            _, data = run_profiled(src, name="cg")
            return analyze(data, assemble(src, profile=True).symbol_table())

        small, big = run(10), run(40)
        delta = compare_profiles(small, big)
        assert delta.total_after > delta.total_before
        assert delta.routine("gen_expr").calls_after > delta.routine(
            "gen_expr"
        ).calls_before
