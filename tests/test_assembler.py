"""Tests for the VM assembler."""

import pytest

from repro.errors import AssemblerError
from repro.machine import INSTRUCTION_SIZE, Op, assemble


class TestLayout:
    def test_addresses_are_instruction_multiples(self):
        exe = assemble(".func main\n PUSH 1\n POP\n HALT\n.end\n")
        assert exe.high_pc == 3 * INSTRUCTION_SIZE
        assert [i.op for i in exe.instructions] == [Op.PUSH, Op.POP, Op.HALT]

    def test_function_records(self):
        exe = assemble(
            ".func main\n HALT\n.end\n.func f\n RET\n.end\n", name="prog"
        )
        assert [f.name for f in exe.functions] == ["main", "f"]
        main, f = exe.functions
        assert (main.entry, main.end) == (0, 4)
        assert (f.entry, f.end) == (4, 8)
        assert exe.entry_point == 0

    def test_entry_point_is_main(self):
        exe = assemble(".func f\n RET\n.end\n.func main\n HALT\n.end\n")
        assert exe.entry_point == exe.function_named("main").entry

    def test_symbol_table_matches_functions(self):
        exe = assemble(".func main\n HALT\n.end\n.func f\n RET\n.end\n")
        table = exe.symbol_table()
        assert table.by_name("main").address == 0
        assert table.by_name("f").size == 4

    def test_globals_directive(self):
        exe = assemble(".globals 3\n.func main\n HALT\n.end\n")
        assert exe.num_globals == 3


class TestLabels:
    def test_local_label_resolution(self):
        exe = assemble(
            ".func main\nloop:\n PUSH 1\n JNZ loop\n HALT\n.end\n"
        )
        jnz = exe.instructions[1]
        assert jnz.op is Op.JNZ
        assert jnz.operand == 0  # address of 'loop'

    def test_local_labels_are_per_function(self):
        exe = assemble(
            ".func main\nl:\n JMP l\n.end\n.func f\nl:\n JMP l\n.end\n"
        )
        assert exe.instructions[0].operand == 0
        assert exe.instructions[1].operand == 4

    def test_call_by_function_name(self):
        exe = assemble(".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n")
        assert exe.instructions[0].operand == exe.function_named("f").entry

    def test_address_of_function(self):
        exe = assemble(
            ".func main\n PUSH &f\n CALLI\n HALT\n.end\n.func f\n RET\n.end\n"
        )
        assert exe.instructions[0].operand == exe.function_named("f").entry


class TestProfilingPrologues:
    def test_profile_inserts_mcount(self):
        exe = assemble(".func main\n HALT\n.end\n", profile=True)
        assert exe.instructions[0].op is Op.MCOUNT
        assert exe.functions[0].profiled
        assert exe.profiled

    def test_noprofile_attribute(self):
        exe = assemble(
            ".func main\n HALT\n.end\n.func f noprofile\n RET\n.end\n",
            profile=True,
        )
        assert exe.function_named("main").profiled
        assert not exe.function_named("f").profiled

    def test_unprofiled_build_has_no_mcount(self):
        exe = assemble(".func main\n HALT\n.end\n", profile=False)
        assert all(i.op is not Op.MCOUNT for i in exe.instructions)

    def test_entry_address_stable_across_profiling(self):
        # Profiling shifts bodies but function entries stay the symbol
        # addresses; label targets must follow.
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        plain = assemble(src, profile=False)
        prof = assemble(src, profile=True)
        assert prof.instructions[1].operand == prof.function_named("f").entry
        assert plain.instructions[0].operand == plain.function_named("f").entry

    def test_handwritten_mcount_rejected(self):
        with pytest.raises(AssemblerError, match="MCOUNT"):
            assemble(".func main\n MCOUNT\n.end\n")


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(AssemblerError, match="FROB"):
            assemble(".func main\n FROB\n.end\n")

    def test_missing_operand(self):
        with pytest.raises(AssemblerError, match="operand"):
            assemble(".func main\n PUSH\n.end\n")

    def test_unexpected_operand(self):
        with pytest.raises(AssemblerError, match="no operand"):
            assemble(".func main\n POP 3\n.end\n")

    def test_unknown_label(self):
        with pytest.raises(AssemblerError, match="unknown label"):
            assemble(".func main\n JMP nowhere\n.end\n")

    def test_duplicate_function(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble(".func f\n RET\n.end\n.func f\n RET\n.end\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble(".func main\nl:\nl:\n HALT\n.end\n")

    def test_instruction_outside_func(self):
        with pytest.raises(AssemblerError, match="outside"):
            assemble("PUSH 1\n")

    def test_unterminated_func(self):
        with pytest.raises(AssemblerError, match="unterminated"):
            assemble(".func main\n HALT\n")

    def test_nested_func(self):
        with pytest.raises(AssemblerError, match="nested"):
            assemble(".func a\n.func b\n.end\n.end\n")

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError) as exc:
            assemble(".func main\n HALT\n FROB\n.end\n")
        assert exc.value.line == 3

    def test_non_integer_operand(self):
        with pytest.raises(AssemblerError, match="integer"):
            assemble(".func main\n PUSH abc\n HALT\n.end\n")

    def test_address_of_unknown_function(self):
        with pytest.raises(AssemblerError, match="unknown function"):
            assemble(".func main\n PUSH &ghost\n HALT\n.end\n")


class TestPersistence:
    def test_executable_roundtrip(self, tmp_path):
        src = ".globals 2\n.func main\n PUSH 1\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe = assemble(src, name="prog", profile=True)
        path = tmp_path / "prog.vmexe"
        exe.save(path)
        from repro.machine import Executable

        back = Executable.load(path)
        assert back.to_dict() == exe.to_dict()

    def test_disassemble_lists_functions(self):
        exe = assemble(".func main\n HALT\n.end\n")
        text = exe.disassemble()
        assert "main:" in text
        assert "HALT" in text

    def test_bad_format_rejected(self):
        from repro.errors import MachineError
        from repro.machine import Executable

        with pytest.raises(MachineError):
            Executable.from_dict({"format": "nope"})
