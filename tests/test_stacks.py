"""Tests for the call-stack sampling extension (repro.stacks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilerError, ReproError
from repro.machine import CPU, assemble
from repro.machine.programs import even_odd, fib, skewed
from repro.stacks import (
    PyStackSampler,
    StackProfile,
    analyze_stacks,
    format_call_tree,
    format_hot_paths,
    read_folded,
    write_folded,
)
from repro.stacks.analysis import _distinct_edges
from repro.stacks.report import format_stack_flat
from repro.stacks.vm import VMStackMonitor, run_stack_profiled
from repro.machine.monitor import MonitorConfig


class TestStackProfile:
    def test_record_and_totals(self):
        p = StackProfile(profrate=100)
        p.record(["main", "f"])
        p.record(("main", "f"))
        p.record(("main", "g"))
        assert p.total_ticks == 3
        assert p.total_seconds == pytest.approx(0.03)
        assert len(p) == 2
        assert p.routines() == {"main", "f", "g"}

    def test_empty_stack_ignored(self):
        p = StackProfile()
        p.record([])
        assert p.total_ticks == 0

    def test_merge(self):
        a, b = StackProfile(50), StackProfile(50)
        a.record(("m", "f"))
        b.record(("m", "f"))
        b.record(("m",))
        merged = a.merge(b)
        assert merged.samples[("m", "f")] == 2
        assert merged.total_ticks == 3

    def test_merge_rate_mismatch(self):
        with pytest.raises(ReproError):
            StackProfile(50).merge(StackProfile(60))

    def test_bad_profrate(self):
        with pytest.raises(ReproError):
            StackProfile(0)


class TestFoldedFormat:
    def test_roundtrip(self, tmp_path):
        p = StackProfile(profrate=250)
        p.record(("main", "a", "b"))
        p.record(("main", "a", "b"))
        p.record(("main", "c"))
        path = tmp_path / "out.folded"
        write_folded(p, path)
        back = read_folded(path)
        assert back.profrate == 250
        assert back.samples == p.samples

    def test_reads_plain_flamegraph_files(self, tmp_path):
        path = tmp_path / "plain.folded"
        path.write_text("main;a;b 7\nmain;c 3\n")
        p = read_folded(path)
        assert p.samples[("main", "a", "b")] == 7
        assert p.profrate == 100  # default

    def test_malformed_count(self, tmp_path):
        path = tmp_path / "bad.folded"
        path.write_text("main;a notanumber\n")
        with pytest.raises(ReproError, match="bad sample count"):
            read_folded(path)

    def test_negative_count(self, tmp_path):
        path = tmp_path / "bad.folded"
        path.write_text("main;a -3\n")
        with pytest.raises(ReproError, match="negative"):
            read_folded(path)


class TestAnalysis:
    def test_exclusive_is_leaf_only(self):
        p = StackProfile(100)
        p.record(("m", "a"))
        p.record(("m", "a", "b"))
        an = analyze_stacks(p)
        assert an.exclusive["a"] == 1
        assert an.exclusive["b"] == 1
        assert an.exclusive["m"] == 0

    def test_inclusive_counts_once_per_sample(self):
        # Recursion: a appears twice in the stack but owns the tick once.
        p = StackProfile(100)
        p.record(("m", "a", "b", "a"))
        an = analyze_stacks(p)
        assert an.inclusive["a"] == 1
        assert an.inclusive["m"] == 1
        assert an.inclusive_percent("a") == pytest.approx(100.0)

    def test_distinct_edges_dedup_recursion(self):
        assert _distinct_edges(("a", "b", "a", "b")) == {("a", "b"), ("b", "a")}

    def test_caller_shares_follow_observed_time(self):
        p = StackProfile(100)
        for _ in range(3):
            p.record(("m", "p1", "work"))
        p.record(("m", "p2", "work"))
        an = analyze_stacks(p)
        shares = an.caller_shares("work")
        assert shares["p1"] == pytest.approx(0.75)
        assert shares["p2"] == pytest.approx(0.25)

    def test_caller_shares_of_root_empty(self):
        p = StackProfile(100)
        p.record(("m",))
        assert analyze_stacks(p).caller_shares("m") == {}

    def test_flat_rows_sorted(self):
        p = StackProfile(100)
        for _ in range(5):
            p.record(("m", "hot"))
        p.record(("m", "cold"))
        rows = analyze_stacks(p).flat_rows()
        assert rows[0][0] == "hot"


class TestVMStackSampling:
    def test_no_compiler_support_needed(self):
        # The executable has no mcount prologues at all.
        cpu, sp = run_stack_profiled(fib(10), cycles_per_tick=5)
        assert sp.total_ticks > 0
        assert not cpu.exe.profiled

    def test_recursion_inclusive_exact(self):
        cpu, sp = run_stack_profiled(fib(12), cycles_per_tick=5)
        an = analyze_stacks(sp)
        # fib is on the stack in essentially every sample, and never
        # counted twice despite deep self-recursion.
        assert an.inclusive["fib"] <= sp.total_ticks
        assert an.inclusive_percent("fib") > 90.0

    def test_cycle_needs_no_collapsing(self):
        cpu, sp = run_stack_profiled(even_odd(30), cycles_per_tick=3)
        an = analyze_stacks(sp)
        assert an.inclusive_percent("main") == pytest.approx(100.0)
        assert an.inclusive["even"] <= sp.total_ticks
        assert an.inclusive["odd"] <= sp.total_ticks

    def test_skew_attribution_fixed(self):
        # The pitfall classic gprof keeps (99/1) is gone: shares follow
        # observed time, near the 50/50 ground truth.
        cpu, sp = run_stack_profiled(skewed(), cycles_per_tick=7)
        shares = analyze_stacks(sp).caller_shares("work_n")
        assert 0.3 < shares["dear_caller"] < 0.6
        assert 0.4 < shares["cheap_caller"] < 0.7

    def test_stride_backs_off_overhead(self):
        # "The additional overhead of gathering the call stack can be
        # hidden by backing off the frequency."
        def walk_cost(stride):
            exe = assemble(fib(13), profile=False)
            mon = VMStackMonitor(
                MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10),
                stride=stride,
            )
            cpu = CPU(exe, mon)
            mon.bind(cpu)
            cpu.run()
            return mon.stack_walk_cycles, mon.stack_profile.total_ticks

    # strides 1 and 8: ~8x fewer samples, ~8x less walk overhead
        cost1, n1 = walk_cost(1)
        cost8, n8 = walk_cost(8)
        assert n8 < n1 / 4
        assert cost8 < cost1 / 4

    def test_overhead_never_sampled(self):
        # Stack-walk cycles shift the profiling clock, so the sampled
        # tick count matches an unmonitored run's cycle count.
        exe = assemble(fib(10), profile=False)
        mon = VMStackMonitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=5)
        )
        cpu = CPU(exe, mon)
        mon.bind(cpu)
        cpu.run()
        plain = CPU(assemble(fib(10), profile=False)).run()
        program_cycles = cpu.cycles - mon.stack_walk_cycles
        assert program_cycles == plain.cycles
        assert mon.histogram.total_ticks == plain.cycles // 5

    def test_tiny_tick_interval_terminates(self):
        # Regression: walk cost > tick interval must not loop forever.
        cpu, sp = run_stack_profiled(even_odd(20), cycles_per_tick=1)
        assert cpu.halted

    def test_bad_stride(self):
        exe = assemble(fib(5), profile=False)
        with pytest.raises(ValueError):
            VMStackMonitor(MonitorConfig(0, exe.high_pc), stride=0)

    def test_reset_clears_stacks(self):
        exe = assemble(fib(10), profile=False)
        mon = VMStackMonitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=5)
        )
        cpu = CPU(exe, mon)
        mon.bind(cpu)
        cpu.run(max_instructions=200)
        assert mon.stack_profile.total_ticks > 0
        mon.reset()
        assert mon.stack_profile.total_ticks == 0


class TestPyStackSampler:
    def _spin(self, ms=50):
        import time

        def hot_leaf(deadline):
            x = 0
            while time.process_time() < deadline:
                x += 1
            return x

        def entry():
            return hot_leaf(time.process_time() + ms / 1000.0)

        return entry

    def test_signal_mode_collects_stacks(self):
        entry = self._spin()
        with PyStackSampler(interval=0.002, mode="signal") as sampler:
            entry()
        assert sampler.profile.total_ticks >= 5
        an = analyze_stacks(sampler.profile)
        leaf = next(n for n in sampler.profile.routines() if "hot_leaf" in n)
        assert an.inclusive_percent(leaf) > 50.0
        # the caller context is present in the sampled stacks
        entry_name = next(
            n for n in sampler.profile.routines() if n.endswith("entry")
        )
        assert an.inclusive[entry_name] > 0

    def test_thread_mode_collects_stacks(self):
        entry = self._spin()
        with PyStackSampler(interval=0.002, mode="thread") as sampler:
            entry()
        assert sampler.profile.total_ticks >= 3

    def test_double_start_rejected(self):
        sampler = PyStackSampler(mode="thread")
        sampler.start()
        try:
            with pytest.raises(ProfilerError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_idempotent(self):
        sampler = PyStackSampler(mode="thread")
        sampler.start()
        sampler.stop()
        sampler.stop()

    def test_bad_args(self):
        with pytest.raises(ProfilerError):
            PyStackSampler(interval=0)
        with pytest.raises(ProfilerError):
            PyStackSampler(mode="quantum")


class TestReports:
    def _profile(self):
        p = StackProfile(100)
        for _ in range(6):
            p.record(("main", "a", "leaf"))
        for _ in range(3):
            p.record(("main", "b", "leaf"))
        p.record(("main",))
        return p

    def test_call_tree_structure(self):
        text = format_call_tree(self._profile(), min_percent=0.0)
        assert "main" in text
        main_line = next(l for l in text.splitlines() if "main" in l)
        assert "100.0%" in main_line
        # children indented under main
        assert "  60.0%" in text

    def test_call_tree_prunes(self):
        text = format_call_tree(self._profile(), min_percent=50.0)
        assert "b" not in [l.split()[-1] for l in text.splitlines()[1:]]

    def test_hot_paths(self):
        text = format_hot_paths(self._profile(), top=2)
        assert "main -> a -> leaf" in text
        assert text.count("%") == 2

    def test_stack_flat_exact_inclusive(self):
        text = format_stack_flat(self._profile())
        leaf_row = next(l for l in text.splitlines() if l.endswith("leaf"))
        assert "90.0" in leaf_row  # 9/10 samples have leaf on the stack

    def test_empty_profiles(self):
        empty = StackProfile()
        assert "no stack samples" in format_call_tree(empty)
        assert "no stack samples" in format_hot_paths(empty)


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.lists(
                st.sampled_from(["m", "a", "b", "c"]), min_size=1, max_size=6
            ),
            st.integers(1, 50),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_inclusive_bounded_by_total(samples):
    """Property: no routine's inclusive ticks exceed total ticks, and
    exclusive sums to the total exactly."""
    p = StackProfile(100)
    for stack, count in samples:
        for _ in range(count):
            p.record(stack)
    an = analyze_stacks(p)
    assert sum(an.exclusive.values()) == p.total_ticks
    for name in p.routines():
        assert an.inclusive[name] <= p.total_ticks
        assert an.exclusive[name] <= an.inclusive[name]


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.lists(
                st.sampled_from(["m", "a", "b"]), min_size=1, max_size=5
            ),
            st.integers(1, 20),
        ),
        min_size=1,
        max_size=15,
    )
)
def test_folded_roundtrip_property(tmp_path_factory, samples):
    """Property: folded write → read is the identity."""
    p = StackProfile(77)
    for stack, count in samples:
        p.samples[tuple(stack)] += count
    path = tmp_path_factory.mktemp("folded") / "p.folded"
    write_folded(p, path)
    back = read_folded(path)
    assert back.samples == p.samples
    assert back.profrate == 77
