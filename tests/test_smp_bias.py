"""§3.2 at scale: elapsed-time bias grows with the machine; sampling
does not move.

The paper rejects wall-clock entry-to-exit timing because
"time measurement is complicated on time-sharing systems by the
time-slicing of the program", and samples the PC on the process's own
clock instead.  On a multiprocessor the rejected method gets *worse*:
each scheduling round lasts as long as its slowest CPU (the skew
policy draws random per-slice quanta), so a routine live across a
round boundary absorbs other CPUs' straggler time, and the over-report
ratio climbs with the CPU count.  The sampling monitor ticks on
process-local time, so the merged profile is exactly N times the
single-process profile — bucket for bucket, well inside the §6
±√samples confidence band.

The measured curve is pinned in ``tests/golden/smp_bias.json``
(regenerate consciously with ``python -m tests.smp_golden --update``).
"""

import math

import pytest

from repro.check.expect import expect_passes
from repro.machine import assemble
from repro.machine.programs import PROGRAMS
from repro.machine.smp import SMPMachine
from tests.smp_golden import BIAS_NCPUS, BIAS_PROGRAM, bias_run, load_bias


@pytest.fixture(scope="module")
def curve():
    """The bias experiment, recomputed once for the whole module."""
    return [bias_run(n) for n in BIAS_NCPUS]


def test_curve_matches_golden(curve):
    golden = load_bias()
    assert golden["program"] == BIAS_PROGRAM
    assert curve == golden["runs"], (
        "the bias experiment drifted; if the machine's cost model "
        "changed intentionally, regenerate with "
        "python -m tests.smp_golden --update"
    )


def test_elapsed_time_over_report_grows_with_cpu_count(curve):
    """The headline: the rejected method degrades as the machine grows."""
    ratios = [run["over_report"] for run in curve]
    assert all(b > a for a, b in zip(ratios, ratios[1:])), ratios
    # and the wall measurement always exceeds true process time
    for run in curve:
        assert run["elapsed_wall"] > run["true_cycles"]


def test_sampled_profile_does_not_move(curve):
    """Merged ticks scale exactly with the workload — no scheduler term."""
    base = curve[0]
    for run in curve[1:]:
        n = run["ncpus"]
        assert run["merged_ticks"] == n * base["merged_ticks"]
        assert run["merged_calls"] == n * base["merged_calls"]


def test_sampled_profile_within_sqrt_band(curve):
    """The §6 bound, stated explicitly: the N-CPU merged sample count
    sits within ±√samples of N times the single-CPU count.  (Exact
    equality implies it; asserting the band documents the claim the
    golden fixture is guarding.)"""
    base = curve[0]
    for run in curve[1:]:
        expected = run["ncpus"] * base["merged_ticks"]
        band = math.sqrt(expected)
        assert abs(run["merged_ticks"] - expected) <= band


def test_wall_clock_advances_slower_than_cpu_time_sum(curve):
    """N CPUs in parallel: total process cycles grow linearly but the
    wall does not — the machine actually models simultaneity."""
    for run in curve[1:]:
        assert run["wall_cycles"] < run["true_cycles"]


def test_per_bucket_histogram_is_exact_multiple():
    """Stronger than the fixture's totals: every histogram bucket of the
    4-CPU merged profile is exactly 4x the single-CPU bucket."""
    source = PROGRAMS[BIAS_PROGRAM]()

    def merged(ncpus):
        exe = assemble(source, name=BIAS_PROGRAM, profile=True)
        machine = SMPMachine(
            exe,
            ncpus=ncpus,
            nprocs=ncpus,
            policy="skew",
            seed=7,
            quantum=400,
            cycles_per_tick=25,
        )
        machine.run()
        return exe, machine.merged_profile(comment=BIAS_PROGRAM)

    _, single = merged(1)
    _, quad = merged(4)
    assert quad.histogram.counts == [4 * c for c in single.histogram.counts]
    by_arc = {(a.from_pc, a.self_pc): a.count for a in single.arcs}
    for arc in quad.arcs:
        assert arc.count == 4 * by_arc[(arc.from_pc, arc.self_pc)]


def test_merged_profile_satisfies_expect_checks():
    """The repro-gprof --expect cross-check: the merged multi-run SMP
    profile is internally consistent (call-count bounds, coverage) —
    sampling on N CPUs produced an analyzable, unbiased profile."""
    source = PROGRAMS[BIAS_PROGRAM]()
    exe = assemble(source, name=BIAS_PROGRAM, profile=True)
    machine = SMPMachine(
        exe,
        ncpus=4,
        nprocs=4,
        policy="skew",
        seed=7,
        quantum=400,
        cycles_per_tick=25,
    )
    machine.run()
    data = machine.merged_profile(comment=BIAS_PROGRAM)
    assert data.runs == 4
    assert expect_passes(exe, data) == []
