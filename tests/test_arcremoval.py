"""Tests for cycle breaking by arc removal (the retrospective's option)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arcremoval import (
    break_cycles_exact,
    break_cycles_heuristic,
    information_lost,
    remove_arcs,
)
from repro.core.cycles import strongly_connected_components

from tests.helpers import graph_from_edges


def _has_cycle(graph):
    return any(len(c) > 1 for c in strongly_connected_components(graph))


class TestRemoveArcs:
    def test_removes_named_arcs(self):
        g = graph_from_edges(("a", "b", 3), ("b", "a", 1))
        removed = remove_arcs(g, [("b", "a")])
        assert [(r.caller, r.callee, r.count) for r in removed] == [("b", "a", 1)]
        assert not _has_cycle(g)

    def test_unknown_pairs_ignored(self):
        g = graph_from_edges(("a", "b"))
        assert remove_arcs(g, [("x", "y")]) == []


class TestHeuristic:
    def test_prefers_low_count_arc(self):
        # The kernel story: the cycle is closed by one rare arc.
        g = graph_from_edges(
            ("a", "b", 1000), ("b", "c", 1000), ("c", "a", 3)
        )
        removed = break_cycles_heuristic(g)
        assert [(r.caller, r.callee) for r in removed] == [("c", "a")]
        assert not _has_cycle(g)

    def test_respects_bound(self):
        # Two independent 2-cycles; bound of 1 leaves one intact.
        g = graph_from_edges(
            ("a", "b", 1), ("b", "a", 1), ("c", "d", 1), ("d", "c", 1)
        )
        removed = break_cycles_heuristic(g, max_arcs=1)
        assert len(removed) == 1
        assert _has_cycle(g)

    def test_self_loops_ignored(self):
        g = graph_from_edges(("a", "a", 5))
        assert break_cycles_heuristic(g) == []
        assert g.arc("a", "a") is not None

    def test_acyclic_graph_untouched(self):
        g = graph_from_edges(("a", "b"), ("b", "c"))
        assert break_cycles_heuristic(g) == []
        assert g.num_arcs() == 2

    def test_netstack_shape(self):
        # A six-node pipeline closed by one loopback arc, plus an
        # unrelated subsystem; removal isolates the pipeline without
        # touching anything else.
        g = graph_from_edges(
            ("main", "ip_in", 40), ("ip_in", "tcp_in", 43),
            ("tcp_in", "app", 43), ("app", "sock", 43),
            ("sock", "tcp_out", 43), ("tcp_out", "ip_out", 43),
            ("ip_out", "ip_in", 3), ("main", "disk", 40),
        )
        removed = break_cycles_heuristic(g)
        assert [(r.caller, r.callee, r.count) for r in removed] == [
            ("ip_out", "ip_in", 3)
        ]
        assert g.arc("main", "disk").count == 40


class TestExact:
    def test_matches_heuristic_on_simple_case(self):
        g = graph_from_edges(("a", "b", 9), ("b", "a", 2))
        exact = break_cycles_exact(g)
        assert [(r.caller, r.callee) for r in exact] == [("b", "a")]
        # exact does not mutate
        assert g.arc("b", "a") is not None

    def test_exact_beats_greedy_when_greedy_is_myopic(self):
        # Two cycles sharing an arc: removing the shared arc (count 5)
        # breaks both; greedy first removes the cheapest arc (count 1)
        # and then still needs another.
        g = graph_from_edges(
            ("a", "b", 5),          # shared arc
            ("b", "a", 1),          # cycle 1 closer (cheapest)
            ("b", "c", 9), ("c", "a", 9),  # cycle 2 via c
        )
        exact = break_cycles_exact(g)
        assert len(exact) == 1
        assert (exact[0].caller, exact[0].callee) == ("a", "b")
        g2 = g.copy()
        greedy = break_cycles_heuristic(g2)
        assert len(greedy) == 2  # myopic: removed b→a, then needed more

    def test_exact_returns_empty_for_acyclic(self):
        g = graph_from_edges(("a", "b"))
        assert break_cycles_exact(g) == []

    def test_exact_none_when_bound_too_small(self):
        # Three disjoint 2-cycles need 3 removals; bound of 2 fails.
        g = graph_from_edges(
            ("a", "b", 1), ("b", "a", 1),
            ("c", "d", 1), ("d", "c", 1),
            ("e", "f", 1), ("f", "e", 1),
        )
        assert break_cycles_exact(g, max_arcs=2) is None


class TestInformationLost:
    def test_fraction(self):
        g = graph_from_edges(("a", "b", 97), ("b", "a", 3))
        removed = break_cycles_heuristic(g)
        assert information_lost(removed, total_calls=100) == pytest.approx(0.03)

    def test_zero_total(self):
        assert information_lost([], 0) == 0.0


@settings(max_examples=40)
@given(st.data())
def test_heuristic_always_breaks_all_cycles_given_budget(data):
    """Property: with a budget of all arcs, the heuristic always
    produces an acyclic graph."""
    n = data.draw(st.integers(2, 8))
    m = data.draw(st.integers(1, 20))
    edges = [
        (
            f"n{data.draw(st.integers(0, n - 1))}",
            f"n{data.draw(st.integers(0, n - 1))}",
            data.draw(st.integers(1, 100)),
        )
        for _ in range(m)
    ]
    g = graph_from_edges(*edges)
    break_cycles_heuristic(g, max_arcs=m + 1)
    assert not _has_cycle(g)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_exact_never_worse_than_heuristic(data):
    """Property: the exhaustive solver (which minimizes the number of
    removed arcs first, then the call traffic discarded) never needs
    more arcs than greedy, and at equal size never discards more
    traffic."""
    n = data.draw(st.integers(2, 5))
    m = data.draw(st.integers(1, 8))
    edges = [
        (
            f"n{data.draw(st.integers(0, n - 1))}",
            f"n{data.draw(st.integers(0, n - 1))}",
            data.draw(st.integers(1, 50)),
        )
        for _ in range(m)
    ]
    g = graph_from_edges(*edges)
    exact = break_cycles_exact(g.copy(), max_arcs=m + 1)
    greedy = break_cycles_heuristic(g.copy(), max_arcs=m + 1)
    assert exact is not None
    assert len(exact) <= len(greedy)
    if len(exact) == len(greedy):
        assert sum(r.count for r in exact) <= sum(r.count for r in greedy)
