"""GP5xx: the pipeline-invariant lint pass.

Healthy data must come out clean (the invariants hold by construction
— the CI self-lint gate depends on that), and each checker must fire
on a doctored artifact that violates its invariant.
"""

from __future__ import annotations

from repro.check import check_executable, pipeline_passes
from repro.check.diagnostics import CODES, Severity
from repro.check.pipelinelint import (
    conservation_findings,
    propagation_findings,
    stage_order_findings,
    topology_findings,
)
from repro.core import AnalysisOptions, analyze
from repro.core.cycles import number_graph
from repro.core.propagate import propagate
from repro.pipeline import PipelineTrace, STAGES, StageTrace

from tests.helpers import graph_from_edges, make_symbols, profile_data
from tests.pipeline_golden import analysis_options, canned_profile_data


def healthy():
    symbols = make_symbols("main", "work", "leaf")
    data = profile_data(
        symbols,
        [("<spontaneous>", "main", 1), ("main", "work", 4),
         ("work", "leaf", 8)],
        ticks={"main": 1, "work": 5, "leaf": 3},
    )
    return symbols, data


# -- registry ---------------------------------------------------------------


def test_gp5_codes_are_registered():
    for code in ("GP501", "GP502", "GP503", "GP504", "GP505"):
        assert code in CODES
    assert CODES["GP505"][0] is Severity.WARNING
    assert CODES["GP501"][0] is Severity.ERROR


def test_list_codes_table_includes_gp5(capsys):
    from repro.cli.check_cli import main

    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in ("GP501", "GP502", "GP503", "GP504", "GP505"):
        assert code in out


# -- clean on healthy data ---------------------------------------------------


def test_healthy_profile_yields_no_findings():
    symbols, data = healthy()
    assert pipeline_passes(symbols, data) == []


def test_healthy_canned_programs_stay_clean_through_check_executable():
    for name in ("fib", "even_odd", "netcycle"):
        exe, data = canned_profile_data(name)
        report = check_executable(exe, [data], [name])
        assert not [d for d in report if d.code.startswith("GP5")]


def test_findings_identical_with_warm_cache():
    from repro.pipeline import AnalysisCache

    symbols, data = healthy()
    cache = AnalysisCache()
    cold = pipeline_passes(symbols, data, cache=cache)
    warm = pipeline_passes(symbols, data, cache=cache)
    assert cold == warm == []


def test_exercises_static_and_cycle_variants():
    exe, data = canned_profile_data("netcycle")
    options = analysis_options(exe, "static")
    assert pipeline_passes(exe.symbol_table(), data, options) == []
    assert pipeline_passes(
        exe.symbol_table(), data,
        AnalysisOptions(auto_break_cycles=True),
    ) == []


# -- each checker fires on a doctored artifact -------------------------------


def test_stage_order_findings_flag_missing_or_reordered_stages():
    good = PipelineTrace(
        stages=[StageTrace(s.name) for s in STAGES]
    )
    assert stage_order_findings(good) == []

    missing = PipelineTrace(stages=good.stages[:-1])
    (finding,) = stage_order_findings(missing)
    assert finding.code == "GP504"

    swapped = list(good.stages)
    swapped[4], swapped[6] = swapped[6], swapped[4]  # augment after number
    (finding,) = stage_order_findings(PipelineTrace(stages=swapped))
    assert finding.code == "GP504"
    assert "augment" in finding.message


def test_topology_findings_flag_non_contiguous_numbers():
    numbered = number_graph(graph_from_edges(("a", "b"), ("b", "c")))
    assert topology_findings(numbered) == []
    victim = numbered.topo_order[0]
    numbered.topo_number[victim] += 10  # punch a hole in the numbering
    codes = {f.code for f in topology_findings(numbered)}
    assert "GP502" in codes


def test_topology_findings_flag_non_descending_arc():
    numbered = number_graph(graph_from_edges(("a", "b"), ("b", "c")))
    # Invert the numbering so every arc now ascends.
    hi = max(numbered.topo_number.values())
    for k in numbered.topo_number:
        numbered.topo_number[k] = hi + 1 - numbered.topo_number[k]
    findings = topology_findings(numbered)
    assert any(f.code == "GP503" for f in findings)


def test_propagation_findings_flag_total_below_self():
    symbols, data = healthy()
    profile = analyze(data, symbols)
    prop = profile.propagation
    assert propagation_findings(prop) == []
    victim = prop.numbered.topo_order[0]
    prop.total_time[victim] = prop.self_time[victim] / 2
    (finding,) = propagation_findings(prop)
    assert finding.code == "GP501"
    assert finding.routine == victim


def test_conservation_findings_flag_lost_time():
    symbols, data = healthy()
    prop = analyze(data, symbols).propagation
    assert conservation_findings(prop) == []
    prop.total_program_time *= 2  # percentages no longer add up
    (finding,) = conservation_findings(prop)
    assert finding.code == "GP505"


def test_doctored_numbering_surfaces_through_propagate():
    """End to end: a numbering broken before propagation produces
    findings from the composed checkers, not an exception."""
    graph = graph_from_edges(("a", "b", 3), ("b", "c", 2))
    numbered = number_graph(graph)
    hi = max(numbered.topo_number.values())
    for k in numbered.topo_number:
        numbered.topo_number[k] = hi + 1 - numbered.topo_number[k]
    findings = topology_findings(numbered)
    prop = propagate(
        number_graph(graph), {"a": 1.0, "b": 1.0, "c": 1.0}
    )
    findings += propagation_findings(prop) + conservation_findings(prop)
    assert {f.code for f in findings} == {"GP503"}
