"""Tests for the execution monitor lifecycle (§3, retrospective kgmon)."""

import pytest

from repro.machine import CPU, Monitor, MonitorConfig, assemble


def make_monitor(src, cycles_per_tick=10):
    exe = assemble(src, profile=True)
    mon = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=cycles_per_tick)
    )
    return exe, mon


LOOP = """
.func main
    PUSH 10
    STORE 0
loop:
    CALL leaf
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end
.func leaf
    WORK 20
    RET
.end
"""


class TestGathering:
    def test_mcleanup_contains_arcs_and_samples(self):
        exe, mon = make_monitor(LOOP)
        CPU(exe, mon).run()
        data = mon.mcleanup(comment="loop")
        assert data.comment == "loop"
        assert data.total_ticks > 0
        # main is called spontaneously; leaf 10 times from main.
        leaf = exe.function_named("leaf")
        leaf_arcs = [a for a in data.arcs if a.self_pc == leaf.entry]
        assert sum(a.count for a in leaf_arcs) == 10

    def test_spontaneous_entry_arc(self):
        exe, mon = make_monitor(LOOP)
        CPU(exe, mon).run()
        data = mon.mcleanup()
        main = exe.function_named("main")
        spont = [a for a in data.arcs if a.self_pc == main.entry]
        assert spont == [type(spont[0])(0, main.entry, 1)]


class TestModes:
    def test_moncontrol_off_stops_gathering(self):
        exe, mon = make_monitor(LOOP)
        mon.moncontrol(False)
        CPU(exe, mon).run()
        data = mon.mcleanup()
        assert data.total_ticks == 0
        assert data.arcs == []

    def test_moncontrol_off_costs_nothing(self):
        exe, mon = make_monitor(LOOP)
        mon.moncontrol(False)
        cpu_off = CPU(exe, mon).run()
        cpu_plain = CPU(assemble(LOOP, profile=False)).run()
        # MCOUNT itself has zero base cost when disabled; only the
        # instruction fetch remains, which our cost table prices at 0.
        assert cpu_off.cycles == cpu_plain.cycles

    def test_reenabling_mid_run(self):
        exe, mon = make_monitor(LOOP)
        cpu = CPU(exe, mon)
        mon.moncontrol(False)
        cpu.run(max_instructions=30)
        mon.moncontrol(True)
        cpu.run()
        data = mon.mcleanup()
        assert data.total_calls > 0


class TestSnapshotReset:
    def test_snapshot_is_independent_copy(self):
        exe, mon = make_monitor(LOOP)
        cpu = CPU(exe, mon)
        cpu.run(max_instructions=40)
        snap = mon.snapshot("window 1")
        ticks_then = snap.total_ticks
        cpu.run()
        assert snap.total_ticks == ticks_then
        assert mon.snapshot().total_ticks >= ticks_then

    def test_reset_zeroes_everything(self):
        exe, mon = make_monitor(LOOP)
        cpu = CPU(exe, mon)
        cpu.run(max_instructions=40)
        mon.reset()
        assert mon.snapshot().total_ticks == 0
        assert mon.snapshot().arcs == []

    def test_windows_sum_to_whole(self):
        # Extract + reset in windows; the windows' ticks sum to an
        # uninterrupted run's ticks (same deterministic program).
        exe, mon = make_monitor(LOOP)
        cpu = CPU(exe, mon)
        windows = []
        while not cpu.halted:
            cpu.run(max_instructions=25)
            windows.append(mon.snapshot())
            mon.reset()
        exe2, mon2 = make_monitor(LOOP)
        CPU(exe2, mon2).run()
        whole = mon2.snapshot()
        assert sum(w.total_ticks for w in windows) == whole.total_ticks
        assert sum(w.total_calls for w in windows) == whole.total_calls


class TestDroppedTicks:
    def test_out_of_range_ticks_counted(self):
        exe = assemble(LOOP, profile=True)
        # Deliberately misconfigure the histogram to cover nothing.
        mon = Monitor(MonitorConfig(10_000, 10_100, cycles_per_tick=10))
        CPU(exe, mon).run()
        assert mon.ticks_dropped > 0
        assert mon.histogram.total_ticks == 0
