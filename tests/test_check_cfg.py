"""Tests for basic-block CFG recovery from VM text segments."""

from repro.check.cfg import branch_stays_inside, build_all_cfgs, build_cfg
from repro.machine import assemble
from repro.machine.executable import Function
from repro.machine.programs import PROGRAMS


def cfg_for(src: str, name: str = "main", profile: bool = False):
    exe = assemble(src, profile=profile)
    return exe, build_cfg(exe, exe.function_named(name))


class TestBlockSplitting:
    def test_straight_line_is_one_block(self):
        exe, cfg = cfg_for(".func main\n PUSH 1\n POP\n HALT\n.end\n")
        assert list(cfg.blocks) == [0]
        block = cfg.blocks[0]
        assert (block.start, block.end) == (0, 12)
        assert block.successors == ()
        assert not block.falls_off_end

    def test_conditional_branch_splits_three_ways(self):
        exe, cfg = cfg_for(
            ".func main\n PUSH 10\n JZ skip\n WORK 5\nskip:\n HALT\n.end\n"
        )
        assert sorted(cfg.blocks) == [0x0, 0x8, 0xC]
        assert set(cfg.blocks[0x0].successors) == {0x8, 0xC}  # fall + target
        assert cfg.blocks[0x8].successors == (0xC,)
        assert cfg.blocks[0xC].successors == ()

    def test_backward_jump_makes_loop_edge(self):
        exe, cfg = cfg_for(
            ".func main\nloop:\n WORK 1\n PUSH 1\n JNZ loop\n HALT\n.end\n"
        )
        assert 0x0 in cfg.blocks[0x0].successors  # JNZ back to loop head

    def test_call_does_not_end_a_block(self):
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe, cfg = cfg_for(src)
        # CALL then HALT sit in one straight-line block.
        assert list(cfg.blocks) == [0]
        assert cfg.blocks[0].end == 8

    def test_mcount_prologue_is_part_of_entry_block(self):
        src = ".func main\n CALL f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe = assemble(src, profile=True)
        cfg = build_cfg(exe, exe.function_named("f"))
        block = cfg.blocks[cfg.entry]
        assert block.end - block.start == 8  # MCOUNT + RET


class TestReachability:
    def test_code_after_ret_is_unreachable(self):
        exe, cfg = cfg_for(".func main\n RET\n WORK 5\n.end\n")
        dead = cfg.unreachable_blocks()
        assert [b.start for b in dead] == [4]

    def test_both_arms_of_conditional_are_reachable(self):
        exe, cfg = cfg_for(
            ".func main\n PUSH 0\n JZ skip\n WORK 1\nskip:\n HALT\n.end\n"
        )
        assert cfg.unreachable_blocks() == []

    def test_reachable_covers_loops(self):
        exe, cfg = cfg_for(
            ".func main\nloop:\n WORK 1\n PUSH 1\n JNZ loop\n HALT\n.end\n"
        )
        assert cfg.reachable() == set(cfg.blocks)


class TestExits:
    def test_fall_off_end_detected(self):
        src = ".func f\n WORK 1\n.end\n.func main\n HALT\n.end\n"
        exe = assemble(src)
        cfg = build_cfg(exe, exe.function_named("f"))
        assert cfg.blocks[cfg.entry].falls_off_end

    def test_conditional_fallthrough_at_end_falls_off(self):
        src = ".func f\n PUSH 1\n JNZ f\n.end\n.func main\n HALT\n.end\n"
        exe = assemble(src)
        cfg = build_cfg(exe, exe.function_named("f"))
        # The JNZ's fall-through leaves the routine body.
        assert any(b.falls_off_end for b in cfg.blocks.values())

    def test_cross_routine_jump_recorded_as_escape(self):
        src = ".func main\n JMP f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe, cfg = cfg_for(src)
        f_entry = exe.function_named("f").entry
        assert cfg.escaping_branches == [(0, f_entry)]
        # No intra-routine successor is fabricated for the escape.
        assert cfg.blocks[0].successors == ()

    def test_branch_stays_inside_is_half_open(self):
        fn = Function("f", 8, 16)
        assert branch_stays_inside(fn, 8)  # the entry itself
        assert branch_stays_inside(fn, 12)  # last instruction
        assert not branch_stays_inside(fn, 16)  # == end: next routine
        assert not branch_stays_inside(fn, 4)  # before the entry

    def test_jump_to_exact_end_is_escaping(self):
        """A branch to ``fn.end`` lands on the *next* routine's first
        instruction — it must be an escape, never a successor."""
        src = ".func f\n JMP g\n.end\n.func g\n HALT\n.end\n"
        exe = assemble(src)
        f = exe.function_named("f")
        assert exe.function_named("g").entry == f.end  # the boundary case
        cfg = build_cfg(exe, f)
        assert cfg.escaping_branches == [(f.entry, f.end)]
        assert cfg.blocks[f.entry].successors == ()

    def test_conditional_branch_to_end_keeps_only_fallthrough(self):
        src = (
            ".func f\n GLOAD 0\n JZ g\n RET\n.end\n"
            ".func g\n HALT\n.end\n"
        )
        exe = assemble(src)
        f = exe.function_named("f")
        cfg = build_cfg(exe, f)
        branch_addr = f.entry + 4  # the JZ
        assert cfg.escaping_branches == [(branch_addr, f.end)]
        # The entry block keeps its fall-through edge and nothing else.
        assert cfg.blocks[f.entry].successors == (f.entry + 8,)

    def test_branch_to_end_as_last_instruction(self):
        """The pass-2 wiring site hits the same boundary: a routine
        whose last instruction conditionally jumps to its own end."""
        src = (
            ".func f\n GLOAD 0\n JNZ g\n.end\n"
            ".func g\n HALT\n.end\n"
        )
        exe = assemble(src)
        f = exe.function_named("f")
        cfg = build_cfg(exe, f)
        assert cfg.escaping_branches == [(f.entry + 4, f.end)]
        (block,) = cfg.blocks.values()
        assert block.successors == ()
        assert block.falls_off_end  # the untaken arm runs past end too

    def test_empty_routine_has_no_blocks(self):
        src = ".func f\n.end\n.func main\n HALT\n.end\n"
        exe = assemble(src)
        cfg = build_cfg(exe, exe.function_named("f"))
        assert cfg.blocks == {}


class TestWholeProgramCFGs:
    def test_blocks_tile_every_routine_exactly(self):
        """Blocks partition each routine body with no gaps or overlap."""
        for name, builder in sorted(PROGRAMS.items()):
            exe = assemble(builder(), name=name, profile=True)
            for fn_name, cfg in build_all_cfgs(exe).items():
                fn = exe.function_named(fn_name)
                covered = sorted(
                    (b.start, b.end) for b in cfg.blocks.values()
                )
                cursor = fn.entry
                for start, end in covered:
                    assert start == cursor, f"{name}:{fn_name} gap"
                    assert end > start
                    cursor = end
                assert cursor == fn.end, f"{name}:{fn_name} short"

    def test_successors_stay_inside_routine(self):
        for name, builder in sorted(PROGRAMS.items()):
            exe = assemble(builder(), name=name, profile=True)
            for fn_name, cfg in build_all_cfgs(exe).items():
                for block in cfg.blocks.values():
                    for succ in block.successors:
                        assert succ in cfg.blocks, f"{name}:{fn_name}"
