"""The salvaging gmon reader: maximal-prefix recovery, honestly reported.

Layout offsets of the victim file used throughout (see
``repro/gmon/format.py``): magic 6, comment-length 2, comment C,
header 28 (runs 4, low_pc 8, high_pc 8, num_buckets 4, profrate 4),
buckets 4 each, num_arcs 4, arcs 20 each.
"""

import struct

import pytest

from repro.check import degradation_passes, salvage_passes
from repro.check.diagnostics import CODES, Severity
from repro.core import analyze
from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.symbols import Symbol, SymbolTable
from repro.errors import GmonFormatError
from repro.gmon import dumps_gmon, read_gmon, salvage_gmon, salvage_gmon_bytes
from repro.gmon.format import RUNS_ZERO_WARNING
from repro.report import format_flat_profile, format_graph_profile

COMMENT = "victim"
MAGIC_END = 6
COMMENT_END = MAGIC_END + 2 + len(COMMENT)
HEADER_END = COMMENT_END + 28
BUCKETS_END = HEADER_END + 10 * 4
NARCS_END = BUCKETS_END + 4
ARCS_END = NARCS_END + 2 * 20


def _victim() -> ProfileData:
    return ProfileData(
        Histogram(0, 40, [1, 2, 3, 4, 5, 0, 0, 0, 0, 9], profrate=60),
        [RawArc(4, 20, 7), RawArc(12, 8, 1)],
        comment=COMMENT,
    )


@pytest.fixture
def blob() -> bytes:
    return dumps_gmon(_victim())


class TestCleanSalvage:
    def test_intact_file_matches_strict(self, blob):
        from repro.gmon import parse_gmon

        strict = parse_gmon(blob)
        data, report = salvage_gmon_bytes(blob)
        assert report.clean
        assert not report.unsalvageable
        assert report.consumed_bytes == report.total_bytes == len(blob)
        assert data.histogram.counts == strict.histogram.counts
        assert data.condensed_arcs() == strict.condensed_arcs()
        assert data.comment == strict.comment
        assert data.warnings == []

    def test_clean_report_yields_no_diagnostics(self, blob):
        _, report = salvage_gmon_bytes(blob)
        assert salvage_passes(report) == []

    def test_salvage_via_read_gmon_and_path(self, blob, tmp_path):
        path = tmp_path / "gmon.out"
        path.write_bytes(blob)
        data, report = read_gmon(path, mode="salvage")
        assert report.clean
        assert report.source == str(path)
        data2, report2 = salvage_gmon(path)
        assert data2.condensed_arcs() == data.condensed_arcs()

    def test_unknown_mode_rejected(self, blob, tmp_path):
        path = tmp_path / "gmon.out"
        path.write_bytes(blob)
        with pytest.raises(ValueError, match="mode"):
            read_gmon(path, mode="lenient")


class TestSectionRecovery:
    def test_bad_magic_unsalvageable(self):
        data, report = salvage_gmon_bytes(b"not a profile at all")
        assert report.unsalvageable
        assert not report.clean
        assert data.total_ticks == 0 and data.arcs == []
        diags = salvage_passes(report)
        assert [d.code for d in diags] == ["GP401"]
        assert diags[0].severity is Severity.ERROR

    def test_empty_input_unsalvageable(self):
        data, report = salvage_gmon_bytes(b"")
        assert report.unsalvageable
        assert salvage_passes(report)[0].code == "GP401"

    def test_cut_inside_comment_recovers_comment_prefix(self, blob):
        data, report = salvage_gmon_bytes(blob[: MAGIC_END + 2 + 3])
        assert not report.clean and not report.unsalvageable
        assert data.comment == COMMENT[:3]
        assert data.total_ticks == 0
        assert any("comment truncated" in m for m in report.dropped)

    def test_cut_inside_header_drops_body(self, blob):
        data, report = salvage_gmon_bytes(blob[: COMMENT_END + 10])
        assert data.comment == COMMENT
        assert data.total_ticks == 0 and data.arcs == []
        assert any("header truncated" in m for m in report.dropped)
        assert "comment" in report.recovered_sections
        assert "header" not in report.recovered_sections

    def test_cut_inside_buckets_recovers_prefix(self, blob):
        # keep 4 of the 10 bucket counters (plus 2 stray bytes)
        data, report = salvage_gmon_bytes(blob[: HEADER_END + 4 * 4 + 2])
        assert report.buckets_expected == 10
        assert report.buckets_read == 4
        assert data.histogram.counts == [1, 2, 3, 4]
        # geometry shrinks with the recovered prefix: 4 buckets * 4 addrs
        assert data.histogram.low_pc == 0
        assert data.histogram.high_pc == 16
        assert data.arcs == []
        assert any("histogram truncated: 4/10" in m for m in report.dropped)

    def test_cut_at_narcs_field_loses_arcs_only(self, blob):
        data, report = salvage_gmon_bytes(blob[:BUCKETS_END])
        assert data.histogram.counts == _victim().histogram.counts
        assert data.arcs == []
        assert any("no arc count field" in m for m in report.dropped)

    def test_cut_inside_arcs_recovers_complete_records(self, blob):
        data, report = salvage_gmon_bytes(blob[: NARCS_END + 20 + 7])
        assert report.arcs_expected == 2
        assert report.arcs_read == 1
        assert data.arcs == [RawArc(4, 20, 7)]
        assert data.histogram.counts == _victim().histogram.counts
        assert any("arc table truncated: 1/2" in m for m in report.dropped)

    def test_trailing_garbage_noted_not_fatal(self, blob):
        data, report = salvage_gmon_bytes(blob + b"\xde\xad")
        assert not report.clean
        assert data.condensed_arcs() == _victim().condensed_arcs()
        assert any("trailing" in m for m in report.notes)


class TestHostileHeaders:
    def test_huge_nbuckets_strict_fails_fast(self, blob, tmp_path):
        hostile = bytearray(blob)
        struct.pack_into("<I", hostile, COMMENT_END + 20, 0xFFFFFFFF)
        path = tmp_path / "gmon.out"
        path.write_bytes(bytes(hostile))
        with pytest.raises(GmonFormatError, match="claims 4294967295"):
            read_gmon(path)

    def test_huge_nbuckets_salvage_reads_what_is_there(self, blob):
        hostile = bytearray(blob)
        struct.pack_into("<I", hostile, COMMENT_END + 20, 0xFFFFFFFF)
        data, report = salvage_gmon_bytes(bytes(hostile))
        # everything after the header parses as bucket counters; no
        # gigantic allocation, no crash
        assert report.buckets_expected == 0xFFFFFFFF
        assert report.buckets_read == (len(blob) - HEADER_END) // 4
        assert any("histogram truncated" in m for m in report.dropped)

    def test_huge_narcs_strict_fails_fast(self, blob, tmp_path):
        hostile = bytearray(blob)
        struct.pack_into("<I", hostile, BUCKETS_END, 0xFFFFFF)
        path = tmp_path / "gmon.out"
        path.write_bytes(bytes(hostile))
        with pytest.raises(GmonFormatError, match="claims 16777215 arcs"):
            read_gmon(path)

    def test_huge_narcs_salvage_keeps_real_arcs(self, blob):
        hostile = bytearray(blob)
        struct.pack_into("<I", hostile, BUCKETS_END, 0xFFFFFF)
        data, report = salvage_gmon_bytes(bytes(hostile))
        assert data.arcs == _victim().condensed_arcs()
        assert report.arcs_read == 2
        assert any("arc table truncated: 2/16777215" in m
                   for m in report.dropped)

    def test_inverted_bounds_drop_histogram_keep_arcs(self, blob):
        hostile = bytearray(blob)
        # low_pc := 1000 (> high_pc 40)
        struct.pack_into("<Q", hostile, COMMENT_END + 4, 1000)
        with pytest.raises(GmonFormatError, match="below"):
            from repro.gmon import parse_gmon

            parse_gmon(bytes(hostile))
        data, report = salvage_gmon_bytes(bytes(hostile))
        assert data.histogram.counts == []
        assert data.arcs == _victim().condensed_arcs()
        assert any("impossible histogram bounds" in m for m in report.dropped)

    def test_zero_profrate_repaired_with_note(self, blob):
        hostile = bytearray(blob)
        struct.pack_into("<I", hostile, COMMENT_END + 24, 0)
        with pytest.raises(GmonFormatError, match="histogram"):
            from repro.gmon import parse_gmon

            parse_gmon(bytes(hostile))
        data, report = salvage_gmon_bytes(bytes(hostile))
        assert data.histogram.profrate == 60  # DEFAULT_PROFRATE
        assert data.histogram.counts == _victim().histogram.counts
        assert any("profrate" in m for m in report.notes)


class TestMalformedComment:
    def test_strict_wraps_unicode_error(self, blob, tmp_path):
        bad = bytearray(blob)
        bad[MAGIC_END + 2] = 0xFF  # first comment byte: invalid UTF-8 start
        path = tmp_path / "gmon.out"
        path.write_bytes(bytes(bad))
        with pytest.raises(GmonFormatError, match="UTF-8"):
            read_gmon(path)

    def test_salvage_replaces_bad_comment_bytes(self, blob):
        bad = bytearray(blob)
        bad[MAGIC_END + 2] = 0xFF
        data, report = salvage_gmon_bytes(bytes(bad))
        assert data.comment == "�" + COMMENT[1:]
        assert data.condensed_arcs() == _victim().condensed_arcs()
        assert any("U+FFFD" in m for m in report.notes)
        codes = [d.code for d in salvage_passes(report)]
        assert codes == ["GP405"]


class TestRunsZero:
    def _zero_runs(self, blob: bytes) -> bytes:
        mutated = bytearray(blob)
        struct.pack_into("<I", mutated, COMMENT_END, 0)
        return bytes(mutated)

    def test_strict_surfaces_warning_instead_of_rewriting_history(
        self, blob, tmp_path
    ):
        path = tmp_path / "gmon.out"
        path.write_bytes(self._zero_runs(blob))
        data = read_gmon(path)
        assert data.runs == 1  # still clamped (division safety)...
        assert data.warnings == [RUNS_ZERO_WARNING]  # ...but never silently
        assert data.degraded

    def test_degradation_passes_emit_gp406(self, blob, tmp_path):
        path = tmp_path / "gmon.out"
        path.write_bytes(self._zero_runs(blob))
        diags = degradation_passes(read_gmon(path))
        assert [d.code for d in diags] == ["GP406"]
        assert diags[0].severity is Severity.WARNING

    def test_salvage_notes_runs_zero(self, blob):
        data, report = salvage_gmon_bytes(self._zero_runs(blob))
        assert data.runs == 1
        assert any("runs == 0" in m for m in report.notes)
        assert "GP406" in [d.code for d in salvage_passes(report)]


class TestDegradedAnalysis:
    def _symbols(self) -> SymbolTable:
        return SymbolTable(
            [Symbol(0, "main", 8), Symbol(8, "a", 20), Symbol(20, "b", 40)]
        )

    def test_salvaged_data_flows_into_profile_warnings(self, blob):
        data, report = salvage_gmon_bytes(blob[: NARCS_END + 20 + 7])
        assert not report.clean
        profile = analyze(data, self._symbols())
        assert profile.degraded
        assert any("arc table truncated" in w for w in profile.warnings)

    def test_reports_carry_degradation_banner(self, blob):
        data, _ = salvage_gmon_bytes(blob[: NARCS_END + 20 + 7])
        profile = analyze(data, self._symbols())
        flat = format_flat_profile(profile)
        graph = format_graph_profile(profile)
        for listing in (flat, graph):
            assert "degraded input" in listing
            assert "arc table truncated" in listing

    def test_pristine_reports_have_no_banner(self, blob):
        from repro.gmon import parse_gmon

        profile = analyze(parse_gmon(blob), self._symbols())
        assert not profile.degraded
        assert "degraded" not in format_flat_profile(profile)
        assert "degraded" not in format_graph_profile(profile)

    def test_unknown_callee_arcs_skipped_with_warning(self):
        data = ProfileData(
            Histogram(0, 40, [0] * 10),
            [RawArc(4, 20, 3), RawArc(4, 9999, 5)],
        )
        profile = analyze(data, self._symbols())
        assert any("no symbol" in w for w in profile.warnings)
        # the impossible arc is gone, the good one survived
        assert profile.graph.arc("main", "b") is not None


class TestSalvageReportRendering:
    def test_to_dict_and_text(self, blob):
        _, report = salvage_gmon_bytes(blob[: NARCS_END + 20 + 7],
                                       source="x.gmon")
        d = report.to_dict()
        assert d["format"] == "repro-salvage-1"
        assert d["clean"] is False
        assert d["arcs_read"] == 1
        text = report.render_text()
        assert "x.gmon" in text and "dropped:" in text
        assert "recovered" in report.summary()

    def test_gp4xx_codes_registered(self):
        for code in ("GP401", "GP402", "GP403", "GP404", "GP405", "GP406"):
            assert code in CODES
