"""Differential battery: the SMP machine is engine-agnostic, and its
merged profiles are frozen.

Three layers of evidence:

* **Fast vs reference.**  An :class:`SMPMachine` built on the
  predecoded fast engine must be indistinguishable from one built on
  the readable reference interpreter — merged bytes, per-process
  machine state, shard contents — including under interrupt storms and
  mid-run kgmon control (extract / reset / moncontrol between rounds),
  where the fast engine's batched clocks are most at risk.

* **Golden digests.**  Every canned program's merged profile at the
  canonical 4-CPU geometry is pinned in
  ``tests/golden/smp_corpus_n4.json`` (regenerate consciously with
  ``python -m tests.smp_golden --update``).  Because the merge is
  schedule-independent, the same digest must reproduce at *other*
  geometries too — checked here so the fixture guards both the wire
  format and the determinism property.

* **The SMP kernel.**  The simulated kernel on an N-CPU machine
  extracts identical windows on either engine.
"""

import hashlib

import pytest

from repro.gmon import dumps_gmon
from repro.kernel import SMPKernelSession, SMPKgmon
from repro.machine import assemble
from repro.machine.cpu import InterruptSource
from repro.machine.programs import PROGRAMS
from repro.machine.smp import SMPMachine
from tests.smp_golden import corpus_digest, load_corpus
from tests.test_smp_determinism import proc_state, run_schedule

ENGINES = ("fast", "reference")


def shard_state(machine):
    """Per-shard observables (partition, not just the merged union)."""
    return [
        (s.index, list(s.histogram.counts), s.arcs.arcs(), s.ticks)
        for s in machine.shards
    ]


def run_engine(engine, name="dispatch", interrupts=None, control=None, **kw):
    """One SMP run on ``engine``; returns every observable."""
    source = PROGRAMS[name]()
    exe = assemble(source, name=name, profile=True)
    irqs = [InterruptSource(*spec) for spec in interrupts] if interrupts else None
    kw.setdefault("ncpus", 4)
    kw.setdefault("nprocs", 3)
    kw.setdefault("seed", 1)
    machine = SMPMachine(
        exe, engine=engine, cycles_per_tick=25, interrupts=irqs, **kw
    )
    extracted = []
    if control is None:
        machine.run()
    else:
        extracted = control(machine)
    return {
        "merged": dumps_gmon(machine.merged_profile(comment=name)),
        "procs": [proc_state(p) for p in machine.procs],
        "shards": shard_state(machine),
        "wall": machine.wall_cycles,
        "rounds": machine.rounds,
        "extracted": [dumps_gmon(d) for d in extracted],
    }


def assert_engines_agree(**kw):
    runs = {engine: run_engine(engine, **kw) for engine in ENGINES}
    assert runs["fast"] == runs["reference"]


# --------------------------------------------------------------------------
# Plain runs, every policy.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fib", "dispatch", "netcycle", "deep"])
def test_engines_agree_canned(name):
    assert_engines_agree(name=name)


@pytest.mark.parametrize("policy", ["random", "affinity", "skew"])
def test_engines_agree_policies(policy):
    assert_engines_agree(name="dispatch", policy=policy, seed=6)


# --------------------------------------------------------------------------
# Interrupt delivery, including storms.
# --------------------------------------------------------------------------

ISR_PROGRAM_NAME = "even_odd"  # any canned program + an appended handler


def run_engine_irq(engine, period, phase, max_rounds=None):
    source = PROGRAMS["even_odd"](12) + "\n.func smp_isr\n WORK 2\n RET\n.end\n"
    exe = assemble(source, name="even_odd_irq", profile=True)
    machine = SMPMachine(
        exe,
        ncpus=4,
        nprocs=3,
        seed=2,
        engine=engine,
        cycles_per_tick=25,
        interrupts=[InterruptSource("smp_isr", period, phase)],
    )
    machine.run(max_rounds=max_rounds)
    return {
        "merged": dumps_gmon(machine.merged_profile(comment="even_odd_irq")),
        "procs": [proc_state(p) for p in machine.procs],
        "shards": shard_state(machine),
    }


@pytest.mark.parametrize("period,phase", [(37, None), (250, 5)])
def test_engines_agree_interrupts(period, phase):
    assert run_engine_irq("fast", period, phase) == run_engine_irq(
        "reference", period, phase
    )


def test_engines_agree_interrupt_storm():
    """Deliveries due every cycle: the processes livelock in the handler
    by design; both engines must livelock identically under a round
    budget, and interrupt arcs stay per-process deterministic."""
    storm_f = run_engine_irq("fast", 1, 0, max_rounds=40)
    storm_r = run_engine_irq("reference", 1, 0, max_rounds=40)
    assert storm_f == storm_r
    assert all(p["irqs"] > 0 for p in storm_f["procs"])


def test_interrupt_arcs_schedule_independent():
    """Interrupts ride each process's own clock, so even IRQ-heavy runs
    keep the merged-bytes identity across CPU counts."""
    source = PROGRAMS["even_odd"](12) + "\n.func smp_isr\n WORK 2\n RET\n.end\n"
    exe_bytes = {}
    for ncpus in (1, 4):
        exe = assemble(source, name="even_odd_irq", profile=True)
        machine = SMPMachine(
            exe,
            ncpus=ncpus,
            nprocs=3,
            policy="skew",
            seed=4,
            cycles_per_tick=25,
            interrupts=[InterruptSource("smp_isr", 53, 1)],
        )
        machine.run()
        exe_bytes[ncpus] = dumps_gmon(machine.merged_profile(comment="x"))
    assert exe_bytes[1] == exe_bytes[4]


# --------------------------------------------------------------------------
# Mid-run kgmon control between scheduling rounds.
# --------------------------------------------------------------------------


def kgmon_control(machine):
    """Extract/reset and moncontrol churn while the machine runs."""
    extracted = []
    machine.run_rounds(3)
    extracted.extend(machine.extract(comment="w0", reset=True))
    machine.moncontrol(False)
    machine.run_rounds(2)
    machine.moncontrol(True)
    machine.run_rounds(3)
    extracted.extend(machine.extract(comment="w1", reset=True))
    machine.run()
    return extracted


def test_engines_agree_under_kgmon_control():
    assert_engines_agree(name="dispatch", control=kgmon_control)


# --------------------------------------------------------------------------
# Golden digests: the corpus at N=4 is frozen.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_golden_corpus_n4(name):
    golden = load_corpus()
    assert name in golden, "regenerate: python -m tests.smp_golden --update"
    assert corpus_digest(name) == golden[name], (
        f"{name}: merged SMP profile changed; if intentional, regenerate "
        "with python -m tests.smp_golden --update"
    )


@pytest.mark.parametrize(
    "kw",
    [
        {"ncpus": 1, "nprocs": 4},
        {"ncpus": 8, "nprocs": 4, "policy": "skew", "seed": 11},
        {"ncpus": 4, "nprocs": 4, "policy": "affinity", "seed": 3, "engine": "reference"},
    ],
)
def test_golden_reproduces_at_other_geometries(kw):
    """The frozen digest is geometry-free: other CPU counts, policies,
    seeds, and the reference engine all reproduce it."""
    golden = load_corpus()
    assert corpus_digest("dispatch", **kw) == golden["dispatch"]


def test_golden_digest_is_of_the_bytes():
    """The digest function itself: blake2b-128 of the wire bytes."""
    from tests.smp_golden import merged_gmon_bytes

    raw = merged_gmon_bytes("fib")
    assert (
        hashlib.blake2b(raw, digest_size=16).hexdigest()
        == load_corpus()["fib"]
    )


# --------------------------------------------------------------------------
# The SMP kernel session, both engines.
# --------------------------------------------------------------------------


def kernel_windows(engine):
    session = SMPKernelSession(
        ncpus=2, iterations=60, seed=3, engine=engine, irq_period=700
    )
    kgmon = SMPKgmon(session)
    kgmon.off()
    session.run_slice(2)
    windows = []
    while not session.halted and len(windows) < 2:
        kgmon.reset()
        kgmon.on()
        session.run_slice(4)
        kgmon.off()
        windows.append(dumps_gmon(kgmon.extract(f"w{len(windows)}")))
    status = kgmon.status()
    return windows, status.ticks, status.calls, status.halted


def test_smp_kernel_engines_agree():
    assert kernel_windows("fast") == kernel_windows("reference")


def test_smp_kernel_window_analyzes():
    """An extracted SMP window feeds the analyzer end to end."""
    from repro.core import analyze

    session = SMPKernelSession(ncpus=2, iterations=80, seed=0)
    kgmon = SMPKgmon(session)
    session.run_slice(6)
    data = kgmon.extract("window")
    profile = analyze(data, session.symbol_table())
    entry = profile.entry("kernel_main")
    assert entry is not None and entry.percent > 0
