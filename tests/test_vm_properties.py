"""Property-based tests for the VM substrate (assembler + CPU)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import CPU, Executable, assemble
from repro.machine.isa import INSTRUCTION_SIZE


# --------------------------------------------------------------------------
# Random arithmetic expressions: the VM agrees with a Python oracle.
# --------------------------------------------------------------------------

@st.composite
def expressions(draw, depth=0):
    """(asm lines, oracle value) for a random arithmetic expression."""
    if depth >= 4 or draw(st.booleans()):
        value = draw(st.integers(-1000, 1000))
        return [f"PUSH {value}"], value
    op = draw(st.sampled_from(["ADD", "SUB", "MUL", "DIV", "MOD", "NEG"]))
    if op == "NEG":
        lines, value = draw(expressions(depth + 1))
        return lines + ["NEG"], -value
    left_lines, left = draw(expressions(depth + 1))
    right_lines, right = draw(expressions(depth + 1))
    lines = left_lines + right_lines + [op]
    if op == "ADD":
        return lines, left + right
    if op == "SUB":
        return lines, left - right
    if op == "MUL":
        return lines, left * right
    # C-style truncation toward zero; guard zero divisors by nudging.
    if right == 0:
        lines = left_lines + ["PUSH 1", op]
        right = 1
    quotient = abs(left) // abs(right) * (1 if (left < 0) == (right < 0) else -1)
    if op == "DIV":
        return lines, quotient
    return lines, left - quotient * right


@settings(max_examples=120)
@given(expressions())
def test_arithmetic_matches_oracle(expr):
    lines, expected = expr
    body = "\n ".join(lines)
    src = f".func main\n {body}\n OUT\n HALT\n.end\n"
    cpu = CPU(assemble(src))
    cpu.run()
    assert cpu.output == [expected]


# --------------------------------------------------------------------------
# Executable image round-trips.
# --------------------------------------------------------------------------

@st.composite
def random_programs(draw):
    """A syntactically valid multi-function program."""
    n_funcs = draw(st.integers(1, 4))
    names = [f"fn{i}" for i in range(n_funcs)]
    funcs = []
    for i, name in enumerate(names):
        body = ["WORK " + str(draw(st.integers(0, 20)))]
        # calls only to later functions: guaranteed termination
        for callee in names[i + 1 :]:
            if draw(st.booleans()):
                body.append(f"CALL {callee}")
        body.append("HALT" if i == 0 else "RET")
        funcs.append(
            f".func {'main' if i == 0 else name}\n "
            + "\n ".join(body)
            + "\n.end\n"
        )
    # first function doubles as main; rename call targets accordingly
    text = "".join(funcs).replace("CALL fn0", "NOP")
    return text


@settings(max_examples=60)
@given(random_programs(), st.booleans())
def test_executable_roundtrip_property(source, profile):
    exe = assemble(source, name="prog", profile=profile)
    again = Executable.from_dict(exe.to_dict())
    assert again.to_dict() == exe.to_dict()
    # behaviour is identical too
    a, b = CPU(exe), CPU(again)
    a.run(max_instructions=5000)
    b.run(max_instructions=5000)
    assert (a.cycles, a.output, a.halted) == (b.cycles, b.output, b.halted)


@settings(max_examples=60)
@given(random_programs())
def test_profiling_never_changes_behaviour(source):
    """Property: for arbitrary terminating programs, the profiled build
    computes the same outputs and executes the same user instructions."""
    plain = CPU(assemble(source, profile=False))
    plain.run(max_instructions=20_000)
    from repro.machine import Monitor, MonitorConfig

    exe = assemble(source, profile=True)
    mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=13))
    prof = CPU(exe, mon)
    prof.run(max_instructions=40_000)
    assert prof.output == plain.output
    assert prof.halted == plain.halted
    if plain.halted:
        # MCOUNT instructions are the only extra work
        mcounts = prof.instructions_executed - plain.instructions_executed
        assert mcounts == mon.stats.lookups


@settings(max_examples=60)
@given(random_programs())
def test_function_layout_invariants(source):
    """Property: functions tile the text segment contiguously and the
    symbol table mirrors them exactly."""
    exe = assemble(source, profile=True)
    addr = 0
    for fn in exe.functions:
        assert fn.entry == addr
        assert fn.end > fn.entry
        assert fn.entry % INSTRUCTION_SIZE == 0
        addr = fn.end
    assert addr == exe.high_pc
    table = exe.symbol_table()
    for fn in exe.functions:
        sym = table.by_name(fn.name)
        assert (sym.address, sym.end) == (fn.entry, fn.end)
