"""Dominator trees and natural loops: units plus property checks.

The property half cross-checks Cooper-Harvey-Kennedy against the
textbook definition on random flow graphs: brute-force dominator sets
by iterated intersection, then demand that ``DomTree.dominates`` agrees
exactly, that immediate dominators strictly dominate, and that every
natural loop body is dominated by its header.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.check.cfg import BasicBlock, RoutineCFG
from repro.check.dominators import compute_dominators, find_loops
from repro.machine.executable import Function
from repro.machine.isa import INSTRUCTION_SIZE


def make_cfg(n: int, edges: list[tuple[int, int]]) -> RoutineCFG:
    """A synthetic CFG with ``n`` one-instruction blocks.

    Block ``i`` lives at address ``i * INSTRUCTION_SIZE``; ``edges``
    are (from_index, to_index) pairs.  Block 0 is the entry.
    """
    w = INSTRUCTION_SIZE
    fn = Function("f", 0, n * w)
    cfg = RoutineCFG(fn)
    succs: dict[int, set[int]] = {i: set() for i in range(n)}
    for a, b in edges:
        succs[a].add(b)
    for i in range(n):
        cfg.blocks[i * w] = BasicBlock(
            i * w, i * w + w, tuple(s * w for s in sorted(succs[i]))
        )
    return cfg


def brute_dominators(cfg: RoutineCFG) -> dict[int, set[int]]:
    """Dominator *sets* by the definitional fixpoint iteration."""
    reached = cfg.reachable()
    preds: dict[int, list[int]] = {b: [] for b in reached}
    for b in reached:
        for s in cfg.blocks[b].successors:
            if s in reached:
                preds[s].append(b)
    doms = {b: set(reached) for b in reached}
    doms[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for b in reached:
            if b == cfg.entry:
                continue
            new = set.intersection(*(doms[p] for p in preds[b])) | {b}
            if new != doms[b]:
                doms[b] = new
                changed = True
    return doms


@st.composite
def random_cfgs(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=2 * n,
        )
    )
    return make_cfg(n, edges)


# -- units -------------------------------------------------------------------


class TestDominatorUnits:
    def test_diamond(self):
        cfg = make_cfg(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        dom = compute_dominators(cfg)
        w = INSTRUCTION_SIZE
        assert dom.idom[1 * w] == 0
        assert dom.idom[2 * w] == 0
        assert dom.idom[3 * w] == 0  # neither arm dominates the join
        assert dom.depth(3 * w) == 1

    def test_chain_depths(self):
        cfg = make_cfg(3, [(0, 1), (1, 2)])
        dom = compute_dominators(cfg)
        w = INSTRUCTION_SIZE
        assert dom.idom[2 * w] == 1 * w
        assert [dom.depth(i * w) for i in range(3)] == [0, 1, 2]

    def test_unreachable_blocks_have_no_dominators(self):
        cfg = make_cfg(3, [(0, 1)])  # block 2 is disconnected
        dom = compute_dominators(cfg)
        assert 2 * INSTRUCTION_SIZE not in dom.idom
        assert set(dom.rpo) == {0, INSTRUCTION_SIZE}


class TestLoopUnits:
    def test_self_loop(self):
        cfg = make_cfg(2, [(0, 0), (0, 1)])
        forest = find_loops(cfg)
        assert list(forest.loops) == [0]
        loop = forest.loops[0]
        assert loop.body == frozenset({0})
        assert loop.back_edges == ((0, 0),)
        assert loop.depth == 1

    def test_nested_loops(self):
        # 0 -> 1 -> 2; 2 -> 2 (inner); 2 -> 1 (outer); 1 -> 3.
        cfg = make_cfg(4, [(0, 1), (1, 2), (2, 2), (2, 1), (1, 3)])
        forest = find_loops(cfg)
        w = INSTRUCTION_SIZE
        inner, outer = forest.loops[2 * w], forest.loops[1 * w]
        assert inner.depth == 2 and inner.parent == outer.header
        assert outer.depth == 1 and outer.parent is None
        assert forest.depth_of(2 * w) == 2
        assert forest.innermost(2 * w) is inner

    def test_irreducible_edge_detected(self):
        # Two entries into the {1, 2} cycle: classic irreducible flow.
        cfg = make_cfg(3, [(0, 1), (0, 2), (1, 2), (2, 1)])
        forest = find_loops(cfg)
        assert forest.irreducible
        assert forest.loops == {}  # no natural loop for either edge

    def test_two_back_edges_one_loop(self):
        cfg = make_cfg(3, [(0, 1), (1, 2), (1, 0), (2, 0)])
        forest = find_loops(cfg)
        (loop,) = forest.loops.values()
        assert loop.header == 0
        assert len(loop.back_edges) == 2


# -- properties on random graphs ---------------------------------------------


@settings(deadline=None, max_examples=120)
@given(random_cfgs())
def test_chk_matches_bruteforce_dominators(cfg):
    dom = compute_dominators(cfg)
    brute = brute_dominators(cfg)
    blocks = set(dom.rpo)
    assert blocks == cfg.reachable()
    for b in blocks:
        chk = {a for a in blocks if dom.dominates(a, b)}
        assert chk == brute[b]


@settings(deadline=None, max_examples=120)
@given(random_cfgs())
def test_entry_dominates_everything_reachable(cfg):
    dom = compute_dominators(cfg)
    for b in dom.rpo:
        assert dom.dominates(cfg.entry, b)


@settings(deadline=None, max_examples=120)
@given(random_cfgs())
def test_idom_is_a_strict_dominator(cfg):
    dom = compute_dominators(cfg)
    for b in dom.rpo:
        if b == cfg.entry:
            assert dom.idom[b] == b
            continue
        assert dom.strictly_dominates(dom.idom[b], b)
        assert dom.depth(b) == dom.depth(dom.idom[b]) + 1


@settings(deadline=None, max_examples=120)
@given(random_cfgs())
def test_loop_bodies_are_dominated_by_their_header(cfg):
    dom = compute_dominators(cfg)
    forest = find_loops(cfg, dom)
    for header, loop in forest.loops.items():
        assert header in loop.body
        assert loop.depth >= 1
        for tail, h in loop.back_edges:
            assert h == header and tail in loop.body
            assert dom.dominates(header, tail)
        for b in loop.body:
            assert dom.dominates(header, b)
        if loop.parent is not None:
            assert header in forest.loops[loop.parent].body


@settings(deadline=None, max_examples=120)
@given(random_cfgs())
def test_irreducible_edges_are_retreating_non_back_edges(cfg):
    dom = compute_dominators(cfg)
    forest = find_loops(cfg, dom)
    index = {b: i for i, b in enumerate(dom.rpo)}
    for src, dst in forest.irreducible_edges:
        assert index[dst] <= index[src]  # retreating in RPO
        assert not dom.dominates(dst, src)  # ... but not a back edge
