"""Fuzz-style robustness: hostile inputs fail cleanly, never crash.

A profiler reads files written by crashed programs, truncated disks,
and other tools' formats; the failure mode must be a clean
:class:`~repro.errors.ReproError` (or a valid parse), never an
arbitrary exception from the guts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.symbols import Symbol, SymbolTable
from repro.errors import GmonFormatError, ReproError
from repro.gmon import (
    dumps_gmon,
    parse_gmon,
    read_gmon,
    salvage_gmon_bytes,
    write_gmon,
)
from repro.gmon.format import MAGIC
from repro.resilience import all_truncations, random_bit_flips
from repro.stacks import read_folded


@settings(max_examples=60)
@given(st.binary(max_size=300))
def test_gmon_reader_survives_random_bytes(tmp_path_factory, blob):
    path = tmp_path_factory.mktemp("fuzz") / "blob"
    path.write_bytes(blob)
    try:
        data = read_gmon(path)
    except GmonFormatError:
        return  # the only acceptable failure
    # a parse that *succeeds* must uphold the data invariants
    assert data.histogram.total_ticks >= 0
    assert all(a.count >= 0 for a in data.arcs)


@settings(max_examples=40)
@given(st.data())
def test_gmon_reader_survives_bit_flips(tmp_path_factory, data):
    """Flipping any one byte of a valid file never escapes the error
    hierarchy (and usually still parses: counts are just numbers)."""
    tmp = tmp_path_factory.mktemp("fuzz")
    valid = ProfileData(
        Histogram(0, 40, [1, 2, 3, 4, 5, 0, 0, 0, 0, 9]),
        [RawArc(4, 20, 7), RawArc(12, 8, 1)],
        comment="victim",
    )
    path = tmp / "gmon"
    write_gmon(valid, path)
    blob = bytearray(path.read_bytes())
    pos = data.draw(st.integers(0, len(blob) - 1))
    bit = data.draw(st.integers(0, 7))
    blob[pos] ^= 1 << bit
    path.write_bytes(bytes(blob))
    try:
        read_gmon(path)
    except ReproError:
        pass  # clean rejection


@settings(max_examples=40)
@given(st.text(max_size=120))
def test_folded_reader_survives_random_text(tmp_path_factory, text):
    path = tmp_path_factory.mktemp("fuzz") / "folded"
    path.write_text(text, encoding="utf-8")
    try:
        profile = read_folded(path)
    except ReproError:
        return
    assert profile.total_ticks >= 0


@settings(max_examples=50, deadline=None)
@given(st.data())
def test_analysis_survives_arbitrary_addresses(data):
    """analyze() must digest raw arcs with arbitrary addresses against
    a symbol table that covers only part of the address space."""
    n_syms = data.draw(st.integers(1, 6))
    symbols = SymbolTable(
        Symbol(i * 100, f"s{i}", i * 100 + data.draw(st.integers(1, 100)))
        for i in range(n_syms)
    )
    hist = Histogram.for_range(0, 1000, scale=0.05, profrate=60)
    for _ in range(data.draw(st.integers(0, 30))):
        hist.record(data.draw(st.integers(0, 999)))
    arcs = [
        RawArc(
            data.draw(st.integers(0, 2000)),
            data.draw(st.integers(0, 2000)),
            data.draw(st.integers(0, 100)),
        )
        for _ in range(data.draw(st.integers(0, 25)))
    ]
    profile = analyze(ProfileData(hist, arcs), symbols)
    assert profile.total_seconds >= 0
    for entry in profile.graph_entries:
        assert entry.percent <= 100.0 + 1e-9
        assert entry.self_seconds >= 0

    # same data with keep_unknown: still clean
    from repro.core import AnalysisOptions

    profile2 = analyze(
        ProfileData(hist, arcs), symbols, AnalysisOptions(keep_unknown=True)
    )
    assert profile2.total_seconds == pytest.approx(profile.total_seconds)


def test_magic_is_versioned():
    # future format revisions must change the magic, not reinterpret it
    assert MAGIC.endswith(b"\x01\x00")


# ---------------------------------------------------------------------------
# round-trip corruption: strict rejects cleanly, salvage never lies
# ---------------------------------------------------------------------------

def _victim_blob() -> bytes:
    return dumps_gmon(
        ProfileData(
            Histogram(0, 40, [1, 2, 3, 4, 5, 0, 0, 0, 0, 9]),
            [RawArc(4, 20, 7), RawArc(12, 8, 1)],
            comment="victim",
        )
    )


_VICTIM = _victim_blob()


def test_every_truncation_strict_rejects_salvage_recovers():
    """Exhaustive: cutting the file at *any* byte boundary must make the
    strict parser raise GmonFormatError (nothing else) while salvage
    returns a report that flags the damage — no crash, no silent lie."""
    for cut, mutated in all_truncations(_VICTIM):
        with pytest.raises(GmonFormatError):
            parse_gmon(mutated)
        data, report = salvage_gmon_bytes(mutated, source=f"cut@{cut}")
        assert not report.clean, f"truncation at {cut} passed as clean"
        assert report.dropped, f"truncation at {cut} produced no drops"
        assert data.histogram.total_ticks >= 0


@settings(max_examples=150, deadline=None)
@given(
    st.integers(0, len(_VICTIM) - 1),
    st.integers(0, 7),
)
def test_bit_flip_strict_and_salvage_agree(pos, bit):
    """Property: for any single-bit flip, either strict parses (and then
    salvage recovers identical data, clean iff strict had no warnings)
    or strict raises GmonFormatError (and then salvage flags damage)."""
    mutated = bytearray(_VICTIM)
    mutated[pos] ^= 1 << bit
    mutated = bytes(mutated)
    try:
        strict = parse_gmon(mutated)
    except GmonFormatError:
        _, report = salvage_gmon_bytes(mutated)
        assert not report.clean
        return
    data, report = salvage_gmon_bytes(mutated)
    assert data.histogram.counts == strict.histogram.counts
    assert data.condensed_arcs() == strict.condensed_arcs()
    assert report.clean == (not strict.warnings)


def test_random_bit_flip_corpus_never_crashes():
    """Seeded sweep (a fast stand-in for the CI corpus job): every
    mutant either parses strictly or raises GmonFormatError, and salvage
    never raises at all."""
    for _pos, _bit, mutated in random_bit_flips(_VICTIM, 256, seed=7):
        try:
            parse_gmon(mutated)
        except GmonFormatError:
            pass
        salvage_gmon_bytes(mutated)
