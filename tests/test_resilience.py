"""Crash-safe persistence and the fault-injection harness.

The contract under test: an atomic write killed at *any* byte leaves
the previous complete file intact; a checkpointing monitor killed
mid-run (even mid-flush) leaves a readable checkpoint whose profile
matches the last completed flush; and every torn artifact a non-atomic
write can produce is either rejected cleanly by the strict reader or
recovered-and-flagged by the salvaging one.
"""

import os

import pytest

from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.errors import GmonFormatError
from repro.gmon import dumps_gmon, read_gmon, write_gmon
from repro.kernel import Kgmon, KernelSession
from repro.machine import CPU, Monitor, MonitorConfig, assemble
from repro.machine.programs import PROGRAMS
from repro.resilience import (
    FaultInjector,
    InjectedFault,
    all_truncations,
    atomic_write_bytes,
    random_bit_flips,
)


def _sample() -> ProfileData:
    return ProfileData(
        Histogram(0, 40, [1, 0, 2, 0, 0, 5, 0, 0, 0, 3]),
        [RawArc(4, 20, 9)],
        comment="resilience",
    )


class TestAtomicWrite:
    def test_basic_write_and_overwrite(self, tmp_path):
        path = tmp_path / "out"
        atomic_write_bytes(path, b"first")
        assert path.read_bytes() == b"first"
        atomic_write_bytes(path, b"second")
        assert path.read_bytes() == b"second"
        assert os.listdir(tmp_path) == ["out"]  # no temp debris

    def test_kill_mid_write_preserves_old_version(self, tmp_path):
        path = tmp_path / "out"
        atomic_write_bytes(path, b"precious original")
        with pytest.raises(InjectedFault):
            atomic_write_bytes(
                path, b"half-written replacement",
                injector=FaultInjector(kill_after=4),
            )
        assert path.read_bytes() == b"precious original"
        # the simulated kill leaves its temp debris, as a real one would
        debris = [n for n in os.listdir(tmp_path) if n != "out"]
        assert len(debris) == 1 and debris[0].startswith("out.tmp.")

    def test_kill_before_first_version_leaves_nothing(self, tmp_path):
        path = tmp_path / "out"
        with pytest.raises(InjectedFault):
            atomic_write_bytes(path, b"data",
                               injector=FaultInjector(kill_after=0))
        assert not path.exists()

    def test_write_gmon_is_atomic_by_default(self, tmp_path):
        path = tmp_path / "gmon.out"
        write_gmon(_sample(), path)
        good = path.read_bytes()
        with pytest.raises(InjectedFault):
            write_gmon(_sample(), path,
                       injector=FaultInjector(kill_after=7))
        assert path.read_bytes() == good
        read_gmon(path)  # still a valid profile

    def test_non_atomic_write_produces_the_torn_file(self, tmp_path):
        """The pre-resilience failure mode, reproduced on demand."""
        path = tmp_path / "gmon.out"
        blob = dumps_gmon(_sample())
        write_gmon(_sample(), path, atomic=False,
                   injector=FaultInjector(truncate_at=len(blob) // 2))
        torn = path.read_bytes()
        assert torn == blob[: len(blob) // 2]
        with pytest.raises(GmonFormatError):
            read_gmon(path)
        data, report = read_gmon(path, mode="salvage")
        assert not report.clean  # recovered, and flagged


class TestFaultInjector:
    def test_passthrough_until_armed(self, tmp_path):
        path = tmp_path / "f"
        injector = FaultInjector(truncate_at=2, arm_on_call=3)
        for expected in (b"aaaa", b"bbbb", b"cc", b"dddd"):
            with open(path, "wb") as f:
                injector.write(f, expected.ljust(4, expected[:1]))
            if injector.calls == 3:
                assert path.read_bytes() == b"cc"
        assert injector.calls == 4

    def test_bit_flip_in_flight(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "wb") as f:
            FaultInjector(flip=(1, 0)).write(f, b"\x00\x00\x00")
        assert path.read_bytes() == b"\x00\x01\x00"

    def test_dropped_chunk_shortens_payload(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "wb") as f:
            FaultInjector(drop=(2, 3)).write(f, b"0123456789")
        assert path.read_bytes() == b"0156789"

    def test_corpus_helpers_are_deterministic(self):
        blob = bytes(range(32))
        cuts = list(all_truncations(blob))
        assert len(cuts) == 32
        assert cuts[5] == (5, blob[:5])
        flips_a = list(random_bit_flips(blob, 10, seed=42))
        flips_b = list(random_bit_flips(blob, 10, seed=42))
        assert flips_a == flips_b
        for offset, bit, mutated in flips_a:
            assert mutated != blob
            assert mutated[offset] == blob[offset] ^ (1 << bit)
        assert list(random_bit_flips(b"", 5)) == []


class _RecordingInjector(FaultInjector):
    """Passes writes through while keeping every payload for the test."""

    def __init__(self, **kw):
        super().__init__(**kw)
        self.payloads: list[bytes] = []

    def write(self, f, payload: bytes) -> None:
        self.payloads.append(payload)
        super().write(f, payload)


def _run_profiled(name: str, checkpoint_path, every: int,
                  injector: FaultInjector | None):
    """Assemble and run a canned program with checkpointing attached."""
    exe = assemble(PROGRAMS[name](), name=name, profile=True)
    monitor = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=40)
    )
    monitor.enable_checkpoints(checkpoint_path, every, injector=injector)
    cpu = CPU(exe, monitor)
    cpu.run()
    return monitor


class TestMonitorCheckpoints:
    def test_periodic_flushes_leave_readable_file(self, tmp_path):
        path = tmp_path / "gmon.ckpt"
        recorder = _RecordingInjector(arm_on_call=10**9)
        monitor = _run_profiled("fib", path, every=5, injector=recorder)
        assert monitor.checkpoints_written >= 2
        data = monitor.mcleanup(comment="fib")
        # mcleanup flushed the final state: file == final data
        assert read_gmon(path).histogram.counts == data.histogram.counts
        assert recorder.payloads[-1] == path.read_bytes()

    def test_mid_write_kill_leaves_last_completed_flush(self, tmp_path):
        """The acceptance scenario: a run killed *during* a checkpoint
        write leaves a readable checkpoint whose flat profile matches
        the last flush that completed."""
        every = 5
        # Reference run: deterministic VM, record every flush payload.
        recorder = _RecordingInjector(arm_on_call=10**9)
        _run_profiled("fib", tmp_path / "ref.ckpt", every, recorder)
        total_flushes = len(recorder.payloads)
        assert total_flushes >= 3
        kill_on = total_flushes - 1  # die during the penultimate flush

        # Victim run: identical program, killed mid-write on flush K.
        path = tmp_path / "gmon.ckpt"
        killer = _RecordingInjector(arm_on_call=kill_on, kill_after=11)
        with pytest.raises(InjectedFault):
            _run_profiled("fib", path, every, killer)

        # The checkpoint is intact and equals the last *completed* flush.
        survivor = path.read_bytes()
        assert survivor == recorder.payloads[kill_on - 2]
        data = read_gmon(path)  # parses strictly: no torn bytes
        from repro.gmon import parse_gmon

        expected = parse_gmon(recorder.payloads[kill_on - 2])
        assert data.histogram.counts == expected.histogram.counts
        assert data.condensed_arcs() == expected.condensed_arcs()

    def test_checkpoints_via_monitor_config(self, tmp_path):
        path = tmp_path / "gmon.ckpt"
        exe = assemble(PROGRAMS["fib"](), name="fib", profile=True)
        monitor = Monitor(
            MonitorConfig(
                exe.low_pc, exe.high_pc, cycles_per_tick=40,
                checkpoint_path=str(path), checkpoint_interval=5,
            )
        )
        CPU(exe, monitor).run()
        assert monitor.checkpoints_written >= 1
        read_gmon(path)

    def test_bad_interval_rejected(self, tmp_path):
        monitor = Monitor(MonitorConfig(0, 100))
        with pytest.raises(ValueError, match="positive"):
            monitor.enable_checkpoints(tmp_path / "x", 0)


class TestKgmonCheckpoint:
    def test_checkpoint_while_kernel_runs(self, tmp_path):
        session = KernelSession(iterations=60)
        kgmon = Kgmon(session)
        session.run_slice(4000)
        path = tmp_path / "kernel.ckpt.gmon"
        flushed = kgmon.checkpoint(path, comment="mid-flight")
        assert not session.halted or True  # kernel state untouched either way
        on_disk = read_gmon(path)
        assert on_disk.comment == "mid-flight"
        assert on_disk.histogram.counts == flushed.histogram.counts

    def test_kill_during_kgmon_checkpoint_keeps_previous(self, tmp_path):
        session = KernelSession(iterations=60)
        kgmon = Kgmon(session)
        session.run_slice(3000)
        path = tmp_path / "kernel.ckpt.gmon"
        kgmon.checkpoint(path)
        good = path.read_bytes()
        session.run_slice(3000)
        with pytest.raises(InjectedFault):
            kgmon.checkpoint(path, injector=FaultInjector(kill_after=9))
        assert path.read_bytes() == good
