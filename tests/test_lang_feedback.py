"""Tests for the PGO feedback layer: profile → AST-level facts."""

import pytest

from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.lang import feedback_from_data, feedback_from_profile, optimize
from repro.lang.codegen import generate, generate_mapped
from repro.lang.feedback import ProfileFeedback
from repro.lang.parser import parse
from repro.lang.passes import build_pipeline, run_passes
from repro.lang.programs import REL_PROGRAMS
from repro.machine import Monitor, MonitorConfig, assemble, make_cpu

CYCLES_PER_TICK = 50


def measure(source: str):
    """Compile profiled+mapped, run once, return the whole evidence."""
    program = parse(source)
    asm, smap = generate_mapped(program)
    exe = assemble(asm, name="t", profile=True)
    monitor = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=CYCLES_PER_TICK)
    )
    cpu = make_cpu(exe, monitor)
    cpu.run()
    return program, exe, smap, monitor.mcleanup()


def feedback_for(source: str) -> ProfileFeedback:
    program, exe, smap, data = measure(source)
    return ProfileFeedback.from_measurement(
        program, exe, smap, data, CYCLES_PER_TICK
    )


class TestArcCounts:
    def test_abstraction_arcs_match_source_structure(self):
        # 50 loop iterations: calc1->format1 x50, calc2/calc3->format2,
        # every path funnels into write (150 calls).
        fb = feedback_for(REL_PROGRAMS["abstraction"]())
        assert fb.calls("calc1", "format1") == 50
        assert fb.calls("calc2", "format2") == 50
        assert fb.calls("calc3", "format2") == 50
        assert fb.calls("format1", "write") == 50
        assert fb.calls("format2", "write") == 100
        assert fb.calls_into("write") == 150
        assert fb.calls_into("main") == 1  # spontaneous program entry
        assert not fb.stale and not fb.empty

    def test_section4_masses_are_conserved(self):
        # Σ self over routines == total program time (§4: every sampled
        # tick belongs to exactly one routine's self time).
        fb = feedback_for(REL_PROGRAMS["abstraction"]())
        assert fb.profile is not None
        assert sum(fb.self_sec.values()) == pytest.approx(
            fb.profile.total_seconds
        )
        # main transitively holds (almost) everything.
        assert fb.total_seconds("main") == pytest.approx(
            fb.profile.total_seconds, rel=0.05
        )


class TestCycles:
    def test_even_odd_cycle_detected_and_mass_counted_once(self):
        fb = feedback_for(REL_PROGRAMS["even_odd"]())
        groups = [g for g in fb.cycle_groups if "even" in g]
        assert groups and set(groups[0]) == {"even", "odd"}
        # §4 cycle discipline: members share the cycle's mass — summing
        # their self times must not exceed the whole program's time.
        assert sum(fb.self_sec.values()) == pytest.approx(
            fb.profile.total_seconds
        )

    def test_layout_keeps_cycle_members_adjacent(self):
        source = REL_PROGRAMS["even_odd"]()
        program, exe, smap, data = measure(source)
        fb = ProfileFeedback.from_measurement(
            program, exe, smap, data, CYCLES_PER_TICK
        )
        optimized, _ = run_passes(program, build_pipeline(0, fb), fb)
        order = [fn.name for fn in optimized.functions]
        assert abs(order.index("even") - order.index("odd")) == 1
        # adjacency in declaration order within the group
        assert order.index("even") < order.index("odd")


class TestStaleProfiles:
    def test_profile_of_other_program_is_stale(self):
        # classify's gmon fed to sieve: never a wrong layout, always a
        # flagged no-op.
        _, _, _, data = measure(REL_PROGRAMS["classify"]())
        fb = feedback_from_data(
            REL_PROGRAMS["sieve"](), data, cycles_per_tick=CYCLES_PER_TICK
        )
        assert fb.stale and fb.empty
        assert fb.warnings
        assert "stale" in fb.describe()

    def test_stale_profile_optimizes_to_identity(self):
        _, _, _, data = measure(REL_PROGRAMS["classify"]())
        program = parse(REL_PROGRAMS["sieve"]())
        stale = feedback_from_data(
            REL_PROGRAMS["sieve"](), data, cycles_per_tick=CYCLES_PER_TICK
        )
        assert generate(optimize(program, level=1, profile=stale)) == generate(
            optimize(program, level=1)
        )

    def test_same_program_different_size_is_stale(self):
        # Same source family, different build (histogram bounds move).
        _, _, _, data = measure(REL_PROGRAMS["classify"](rounds=300))
        fb = feedback_from_data(
            REL_PROGRAMS["classify"](rounds=299) + "\nfunc pad() { return 1; }",
            data,
            cycles_per_tick=CYCLES_PER_TICK,
        )
        assert fb.stale

    def test_name_level_staleness(self):
        fb_ok = feedback_for(REL_PROGRAMS["abstraction"]())
        other = parse(REL_PROGRAMS["sieve"]())
        fb = feedback_from_profile(fb_ok.profile, other)
        assert fb.stale and fb.warnings


class TestZeroSampleProfiles:
    def _empty_data(self, exe) -> ProfileData:
        nbuckets = (exe.high_pc - exe.low_pc) // 4
        hist = Histogram(exe.low_pc, exe.high_pc, [0] * nbuckets, 60)
        return ProfileData(hist, [], comment="empty")

    def test_zero_sample_profile_is_empty_not_stale(self):
        program, exe, smap, _ = measure(REL_PROGRAMS["classify"]())
        fb = ProfileFeedback.from_measurement(
            program, exe, smap, self._empty_data(exe), CYCLES_PER_TICK
        )
        assert not fb.stale
        assert fb.empty
        assert "identity transform" in fb.describe()

    def test_zero_sample_profile_is_identity_transform(self):
        program, exe, smap, _ = measure(REL_PROGRAMS["classify"]())
        fb = ProfileFeedback.from_measurement(
            program, exe, smap, self._empty_data(exe), CYCLES_PER_TICK
        )
        optimized, traces = run_passes(program, build_pipeline(0, fb), fb)
        assert generate(optimized) == generate(program)
        assert not any(t.counters for t in traces if t.counters)


class TestDeterminismAndNameLevelPath:
    def test_feedback_is_deterministic_for_fixed_data(self):
        program, exe, smap, data = measure(REL_PROGRAMS["sieve"]())
        fb1 = ProfileFeedback.from_measurement(
            program, exe, smap, data, CYCLES_PER_TICK
        )
        fb2 = ProfileFeedback.from_measurement(
            program, exe, smap, data, CYCLES_PER_TICK
        )
        assert fb1.branch_hints == fb2.branch_hints
        assert fb1.arc_counts == fb2.arc_counts
        out1, _ = run_passes(program, build_pipeline(0, fb1), fb1)
        out2, _ = run_passes(program, build_pipeline(0, fb2), fb2)
        assert generate(out1) == generate(out2)

    def test_name_level_path_has_counts_but_no_branch_hints(self):
        source = REL_PROGRAMS["abstraction"]()
        exact = feedback_for(source)
        fb = feedback_from_profile(exact.profile, parse(source))
        assert not fb.stale
        assert fb.calls("format1", "write") == 50
        assert fb.branch_hints == {}  # addresses are gone on this path

    def test_classify_gets_a_swap_hint(self):
        # The canned skew workload exists to exercise exactly this.
        fb = feedback_for(REL_PROGRAMS["classify"]())
        assert any(
            fname == "weigh" and verdict == "swap"
            for (fname, _), verdict in fb.branch_hints.items()
        )

    def test_sieve_gets_a_rotate_hint(self):
        fb = feedback_for(REL_PROGRAMS["sieve"]())
        assert "rotate" in fb.branch_hints.values()
