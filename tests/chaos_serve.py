"""Chaos gate for the ingest service: ``python -m tests.chaos_serve``.

Boots a real ``repro-serve`` subprocess and throws a hostile fleet at
it — healthy uploads, corrupt mutants (truncations and bit flips),
mid-upload socket hangups — then ``SIGKILL``s the server in the middle
of the stream, restarts it, retries everything unacknowledged with the
same idempotency keys, and finishes the run.

The gate asserts the full robustness contract end to end:

* the server process never crashes (exit by our signals only, no
  tracebacks on its stderr);
* nothing corrupt is admitted: every acknowledged upload was either
  strict-valid or deterministically salvageable, everything else got a
  422 and a quarantine entry;
* **byte-identity**: after kill -9 and restart, each tenant's merged
  profile equals an offline ``repro-merge`` of exactly the
  acknowledged uploads' canonical bytes, in sequence order.

Exit status: 0 all good, 1 infrastructure/crash failure, 2 the
recovered profile lied (identity or admission violation).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import GmonFormatError
from repro.gmon import dumps_gmon, parse_gmon, salvage_gmon_bytes
from repro.resilience.faults import random_bit_flips
from repro.serve.agent import AgentClient, AgentError, RetryPolicy, wait_until_healthy

TENANTS = ("alpha", "beta", "gamma")


def build_uploads(total: int, seed: int = 99):
    """The chaos corpus: (key, tenant, blob, kind) per planned upload.

    Roughly 70% healthy, 15% truncated, 15% bit-flipped — every mutant
    derived from a healthy blob so salvageability varies naturally.
    """
    from benchmarks.emit_bench import build_corpus

    import random

    with tempfile.TemporaryDirectory(prefix="chaos_corpus_") as tmp:
        healthy_n = max(total * 7 // 10, 1)
        paths = build_corpus(Path(tmp), healthy_n, nbuckets=400, narcs=60,
                             arc_sites=90, seed=seed)
        blobs = [Path(p).read_bytes() for p in paths]
    planned: list[tuple[bytes, str]] = [(b, "healthy") for b in blobs]
    mutant_sources = blobs[: max(total - len(planned), 0)]
    half = len(mutant_sources) // 2
    for j, blob in enumerate(mutant_sources):
        if j < half:
            # spread cuts across the whole file so some land in the arc
            # table (salvageable to a merge) and some in the histogram
            # (quarantine territory)
            cut = 7 + (j * (len(blob) // 7 + 13)) % max(len(blob) - 8, 1)
            planned.append((blob[:cut], "truncated"))
        else:
            _off, _bit, mutated = next(
                iter(random_bit_flips(blob, 1, seed=seed + j))
            )
            planned.append((mutated, "bitflip"))
    planned = planned[:total]
    # Interleave mutants among healthy uploads per tenant, but keep each
    # tenant's FIRST upload healthy: the first accepted upload defines
    # the tenant's layout, and a strict-valid bitflip there would
    # (correctly, but unhelpfully for this gate) poison the fleet.
    per_tenant: dict[str, list[tuple[bytes, str]]] = {t: [] for t in TENANTS}
    for i, entry in enumerate(planned):
        per_tenant[TENANTS[i % len(TENANTS)]].append(entry)
    rng = random.Random(seed)
    for entries in per_tenant.values():
        tail = entries[1:]
        rng.shuffle(tail)
        entries[1:] = tail
    uploads = []
    i = 0
    while any(per_tenant.values()):
        for tenant in TENANTS:
            if per_tenant[tenant]:
                blob, kind = per_tenant[tenant].pop(0)
                uploads.append((f"up-{i:04d}", tenant, blob, kind))
                i += 1
    return uploads


def canonical_bytes(blob: bytes) -> bytes | None:
    """What the server journals for ``blob`` — or None if quarantined.

    Mirrors :meth:`TenantStore.accept` exactly: strict-valid bodies are
    journaled verbatim; salvageable ones as the re-serialized recovery;
    unsalvageable ones never enter merged state.  (Layout gating is
    checked against the observed outcome, not re-derived here.)
    """
    try:
        parse_gmon(blob)
        return blob
    except GmonFormatError:
        pass
    except Exception:  # noqa: BLE001 — a parser crash is its own failure
        return None
    data, report = salvage_gmon_bytes(blob)
    if report.buckets_read == 0 and not data.arcs:
        return None
    return dumps_gmon(data)


class Server:
    """The repro-serve subprocess under test."""

    def __init__(self, root: Path, logdir: Path) -> None:
        self.root = root
        self.logdir = logdir
        self.proc: subprocess.Popen | None = None
        self.host = self.port = None
        self._boot = 0

    def start(self) -> None:
        self._boot += 1
        announce = self.root / f"announce.{self._boot}"
        log = open(self.logdir / f"server.{self._boot}.log", "w")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.serve_cli",
             "--root", str(self.root / "state"), "--port", "0",
             "--checkpoint-every", "32", "--announce", str(announce)],
            env=env, stdout=log, stderr=subprocess.STDOUT,
        )
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if announce.exists():
                self.host, port_text = announce.read_text().split()
                self.port = int(port_text)
                break
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"server died during boot {self._boot}; see its log"
                )
            time.sleep(0.02)
        else:
            raise RuntimeError("server never announced its port")
        if not wait_until_healthy(self.host, self.port, timeout=10):
            raise RuntimeError("server bound a port but never got healthy")

    def kill9(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(30)

    def graceful_stop(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(30)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            return -9

    def logs(self) -> str:
        return "".join(
            (self.logdir / f"server.{b}.log").read_text()
            for b in range(1, self._boot + 1)
        )


REPO = Path(__file__).resolve().parent.parent


def mid_upload_disconnect(host: str, port: int, blob: bytes) -> None:
    """Send half an upload body, then vanish."""
    with socket.create_connection((host, port), timeout=5) as sock:
        head = (
            f"POST /v1/profiles/{TENANTS[0]} HTTP/1.1\r\n"
            f"host: chaos\r\ncontent-length: {len(blob)}\r\n\r\n"
        ).encode()
        sock.sendall(head + blob[: len(blob) // 2])
        # no shutdown, no rest of the body: just gone


def run_chaos(total: int, kill_at: int, disconnect_every: int) -> int:
    acked: dict[str, list[tuple[int, bytes]]] = {t: [] for t in TENANTS}
    counts = {"merged": 0, "salvaged": 0, "quarantined": 0, "retried": 0,
              "disconnects": 0, "dedup_verified": 0}
    uploads = build_uploads(total)
    with tempfile.TemporaryDirectory(prefix="chaos_serve_") as tmp:
        root = Path(tmp)
        server = Server(root, root)
        server.start()
        killed = False
        merged_log: list[tuple[int, str, str, bytes, int]] = []
        for n, (key, tenant, blob, kind) in enumerate(uploads):
            if n == kill_at:
                # kill -9 while an upload is half-way up the wire — and
                # do NOT restart here: the agent's retry path discovers
                # the dead server and the harness revives it, exactly
                # the sequence a supervisor-restarted deployment sees
                try:
                    mid_upload_disconnect(server.host, server.port, blob)
                except OSError:
                    pass
                server.kill9()
                killed = True
            elif disconnect_every and n % disconnect_every == 0 and n:
                try:
                    mid_upload_disconnect(server.host, server.port,
                                          uploads[0][2])
                    counts["disconnects"] += 1
                except OSError:
                    pass
            client = AgentClient(
                server.host, server.port, timeout=10,
                policy=RetryPolicy(retries=4, base_delay=0.05, seed=n),
            )
            expected = canonical_bytes(blob)
            for attempt in (1, 2):
                try:
                    result = client.upload(tenant, blob, key=key)
                except AgentError as exc:
                    if exc.status in (400, 409, 422):
                        # a permanent rejection (front door or
                        # quarantine) is correct for mutants, fatal
                        # for healthy uploads
                        if kind == "healthy":
                            print(f"chaos: FATAL: healthy upload {key} "
                                  f"rejected: {exc}", file=sys.stderr)
                            return 2
                        counts["quarantined"] += 1
                        break
                    if attempt == 1:
                        # the server may have died under us; revive it
                        # (a fresh boot can land on a new port)
                        if server.proc.poll() is not None:
                            server.start()
                            client = AgentClient(
                                server.host, server.port, timeout=10,
                                policy=RetryPolicy(retries=4,
                                                   base_delay=0.05, seed=n),
                            )
                        counts["retried"] += 1
                        continue
                    print(f"chaos: FATAL: upload {key} never acknowledged: "
                          f"{exc}", file=sys.stderr)
                    return 1
                else:
                    if expected is None:
                        print(f"chaos: FATAL: unsalvageable {kind} upload "
                              f"{key} was admitted as seq {result.seq}",
                              file=sys.stderr)
                        return 2
                    if result.attempts > 1:
                        counts["retried"] += 1
                    counts["merged"] += 1
                    if result.salvaged:
                        counts["salvaged"] += 1
                    acked[tenant].append((result.seq, expected))
                    merged_log.append((n, key, tenant, blob, result.seq))
                    break
        if not killed:
            print("chaos: FATAL: the kill point was never reached",
                  file=sys.stderr)
            return 1

        # uploads acked BEFORE the kill must dedup after it: re-send a
        # sample with their original keys and demand the original seq
        client = AgentClient(server.host, server.port, timeout=10)
        pre_kill = [e for e in merged_log if e[0] < kill_at]
        for n, key, tenant, blob, seq in pre_kill[:: max(len(pre_kill) // 10, 1)]:
            result = client.upload(tenant, blob, key=key)
            if result.status != "duplicate" or result.seq != seq:
                print(f"chaos: FATAL: pre-kill upload {key} (seq {seq}) "
                      f"re-sent after the kill came back as "
                      f"{result.status} seq {result.seq} — the journal "
                      "lost or double-counted it", file=sys.stderr)
                return 2
            counts["dedup_verified"] += 1

        # read back every tenant's merged profile from the survivor
        recovered: dict[str, bytes] = {}
        for tenant in TENANTS:
            if acked[tenant]:
                recovered[tenant] = client.merged_sum(tenant)
        rc = server.graceful_stop()
        logs = server.logs()
        if rc != 0:
            print(f"chaos: FATAL: graceful stop exited {rc}",
                  file=sys.stderr)
            return 1
        if "Traceback" in logs:
            print("chaos: FATAL: server logged a traceback:\n" + logs,
                  file=sys.stderr)
            return 1

        # offline truth: repro-merge over the acked canonical bytes in
        # sequence order
        from repro.cli.merge_cli import main as repro_merge

        for tenant, entries in acked.items():
            if not entries:
                continue
            tdir = root / f"offline-{tenant}"
            tdir.mkdir()
            files = []
            for seq, blob in sorted(entries):
                path = tdir / f"{seq:06d}.gmon"
                path.write_bytes(blob)
                files.append(str(path))
            out = str(tdir / "gmon.sum")
            if repro_merge(["-o", out, "-q", *files]) != 0:
                print(f"chaos: FATAL: offline repro-merge failed for "
                      f"{tenant}", file=sys.stderr)
                return 1
            offline = Path(out).read_bytes()
            if offline != recovered[tenant]:
                print(f"chaos: FATAL: tenant {tenant}: recovered profile "
                      f"({len(recovered[tenant])} bytes) differs from the "
                      f"offline merge ({len(offline)} bytes) of its "
                      f"{len(entries)} acknowledged uploads",
                      file=sys.stderr)
                return 2

    print(
        f"chaos: OK — {counts['merged']} merged ({counts['salvaged']} "
        f"salvaged), {counts['quarantined']} quarantined, "
        f"{counts['retried']} retried, {counts['disconnects']} injected "
        f"disconnects, 1 kill -9 survived, {counts['dedup_verified']} "
        f"pre-kill acks dedup-verified, "
        f"{sum(len(v) for v in acked.values())} uploads byte-verified "
        f"across {sum(1 for v in acked.values() if v)} tenants"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos_serve",
        description="kill -9 chaos gate for the repro-serve daemon",
    )
    parser.add_argument("--uploads", type=int, default=200,
                        help="total uploads to attempt (default 200)")
    parser.add_argument("--kill-at", type=int, default=None,
                        help="upload index to SIGKILL at (default: halfway)")
    parser.add_argument("--disconnect-every", type=int, default=23,
                        help="inject a mid-body hangup every N uploads")
    opts = parser.parse_args(argv)
    kill_at = opts.kill_at if opts.kill_at is not None else opts.uploads // 2
    return run_chaos(opts.uploads, kill_at, opts.disconnect_every)


if __name__ == "__main__":
    sys.exit(main())
