"""Tests for the prof(1) baseline and its comparison with gprof."""

import pytest

from repro.baseline import format_prof, prof_analyze
from repro.core import analyze
from repro.machine import assemble, run_profiled
from repro.machine.programs import abstraction

from tests.helpers import make_symbols, profile_data


class TestProfTable:
    def test_rows_sorted_by_self_time(self):
        symbols = make_symbols("main", "hot", "cold")
        data = profile_data(
            symbols,
            [("main", "hot", 2), ("main", "cold", 2)],
            ticks={"hot": 60, "cold": 6, "main": 12},
        )
        rows = prof_analyze(data, symbols)
        assert [r.name for r in rows] == ["hot", "main", "cold"]

    def test_percent_and_ms_per_call(self):
        symbols = make_symbols("main", "f")
        data = profile_data(
            symbols, [("main", "f", 4)], ticks={"f": 30, "main": 30}
        )
        rows = prof_analyze(data, symbols)
        f = next(r for r in rows if r.name == "f")
        assert f.percent == pytest.approx(50.0)
        assert f.seconds == pytest.approx(0.5)
        assert f.calls == 4
        assert f.ms_per_call == pytest.approx(125.0)

    def test_routine_with_samples_but_no_calls(self):
        symbols = make_symbols("main")
        data = profile_data(symbols, [], ticks={"main": 6})
        (row,) = prof_analyze(data, symbols)
        assert row.calls is None
        assert row.ms_per_call is None

    def test_format(self):
        symbols = make_symbols("main", "f")
        data = profile_data(symbols, [("main", "f", 4)], ticks={"f": 30})
        text = format_prof(prof_analyze(data, symbols))
        assert "%time" in text
        assert "f" in text


class TestMotivation:
    """The paper's §1-2 story, measured."""

    def test_flat_profile_diffuses_abstraction_cost(self):
        src = abstraction(iterations=60)
        cpu, data = run_profiled(src, name="abstraction")
        symbols = assemble(src, profile=True).symbol_table()
        rows = {r.name: r for r in prof_analyze(data, symbols)}
        # prof: each calc looks cheap (self time only)…
        for calc in ("calc1", "calc2", "calc3"):
            assert rows[calc].percent < 15.0
        # …and the formatting cost is split across several routines,
        # none individually dominant.
        fmt_like = [rows[n].percent for n in ("format1", "format2", "write")]
        assert all(p < 60.0 for p in fmt_like)
        assert sum(fmt_like) > 60.0

    def test_gprof_reattributes_to_the_abstraction_users(self):
        src = abstraction(iterations=60)
        cpu, data = run_profiled(src, name="abstraction")
        symbols = assemble(src, profile=True).symbol_table()
        profile = analyze(data, symbols)
        # gprof: each calc's entry carries the cost it causes.
        for calc in ("calc1", "calc2", "calc3"):
            entry = profile.entry(calc)
            assert entry.percent > 20.0

    def test_same_time_basis(self):
        # prof and gprof disagree only about attribution, not about the
        # total or per-routine self time.
        src = abstraction(iterations=60)
        cpu, data = run_profiled(src, name="abstraction")
        symbols = assemble(src, profile=True).symbol_table()
        rows = {r.name: r for r in prof_analyze(data, symbols)}
        profile = analyze(data, symbols)
        for flat in profile.flat_entries:
            assert rows[flat.name].seconds == pytest.approx(flat.self_seconds)
