"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"), key=lambda p: p.name)


def _env_with_src():
    """Subprocesses need src/ importable even without an installed repro."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples may write artifact files
        env=_env_with_src(),
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they show"


def test_example_inventory():
    """The deliverable: a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
