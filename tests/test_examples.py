"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda p: p.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, tmp_path):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,  # examples may write artifact files
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they show"


def test_example_inventory():
    """The deliverable: a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
