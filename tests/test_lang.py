"""Tests for the Rel language compiler (lexer, parser, codegen)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze
from repro.errors import LangError
from repro.lang import compile_source, compile_to_asm
from repro.lang.lexer import tokenize
from repro.lang.parser import parse
from repro.machine import CPU, run_profiled


def run_rel(source, **kw):
    cpu = CPU(compile_source(source, **kw))
    cpu.run()
    return cpu


def eval_expr(expr: str) -> int:
    """Value printed by ``print <expr>;`` inside main."""
    cpu = run_rel(f"func main() {{ print {expr}; }}")
    return cpu.output[0]


class TestLexer:
    def test_token_kinds(self):
        toks = tokenize("func f(x) { return x1 + 42; } // comment")
        kinds = [(t.kind, t.value) for t in toks]
        assert ("kw", "func") in kinds
        assert ("name", "x1") in kinds
        assert ("num", 42) in kinds
        assert kinds[-1] == ("eof", None)

    def test_two_char_operators(self):
        toks = tokenize("a<=b==c&&d")
        ops = [t.value for t in toks if t.kind == "op"]
        assert ops == ["<=", "==", "&&"]

    def test_line_numbers(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 3]

    def test_bad_character(self):
        with pytest.raises(LangError, match="line 2"):
            tokenize("ok\n@")


class TestExpressions:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("10 - 3 - 2", 5),          # left associative
            ("17 / 5", 3),
            ("-17 / 5", -3),            # C-style truncation
            ("17 % 5", 2),
            ("-(3 + 4)", -7),
            ("1 < 2", 1),
            ("2 <= 1", 0),
            ("3 == 3", 1),
            ("3 != 3", 0),
            ("!0", 1),
            ("!5", 0),
            ("1 && 2", 1),
            ("1 && 0", 0),
            ("0 || 0", 0),
            ("0 || 7", 1),
            ("1 + 2 < 4", 1),           # cmp binds loosest of arithmetics
        ],
    )
    def test_evaluation(self, expr, expected):
        assert eval_expr(expr) == expected

    def test_short_circuit_skips_side_effects(self):
        src = """
var hits;
func bump() { hits = hits + 1; return 1; }
func main() {
    x = 0 && bump();
    y = 1 || bump();
    print hits;
    print x + y;
}
"""
        cpu = run_rel(src)
        assert cpu.output == [0, 1]  # bump never ran


class TestStatements:
    def test_while_loop(self):
        src = """
func main() {
    total = 0;
    i = 1;
    while (i <= 10) { total = total + i; i = i + 1; }
    print total;
}
"""
        assert run_rel(src).output == [55]

    def test_if_elif_else(self):
        src = """
func classify(n) {
    if (n < 0) { return -1; }
    else if (n == 0) { return 0; }
    else { return 1; }
}
func main() {
    print classify(-5);
    print classify(0);
    print classify(9);
}
"""
        assert run_rel(src).output == [-1, 0, 1]

    def test_locals_independent_of_globals(self):
        src = """
var g;
func set_local() { x = 99; return x; }
func main() {
    g = 5;
    set_local();
    print g;
}
"""
        assert run_rel(src).output == [5]

    def test_global_assignment_targets_global(self):
        src = """
var g;
func bump() { g = g + 1; return g; }
func main() { bump(); bump(); print g; }
"""
        assert run_rel(src).output == [2]

    def test_array_round_trip(self):
        src = """
array a[5];
func main() {
    i = 0;
    while (i < 5) { a[i] = i * i; i = i + 1; }
    print a[0] + a[1] + a[2] + a[3] + a[4];
}
"""
        assert run_rel(src).output == [30]

    def test_return_without_value_is_zero(self):
        src = "func f() { return; }\nfunc main() { print f(); }"
        assert run_rel(src).output == [0]

    def test_falling_off_end_returns_zero(self):
        src = "func f() { burn 3; }\nfunc main() { print f(); }"
        assert run_rel(src).output == [0]

    def test_burn_costs_cycles(self):
        cheap = run_rel("func main() { burn 1; }").cycles
        dear = run_rel("func main() { burn 500; }").cycles
        assert dear - cheap == 499

    def test_expression_statement_discards(self):
        src = "func f() { return 7; }\nfunc main() { f(); print 1; }"
        assert run_rel(src).output == [1]

    def test_recursion(self):
        src = """
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print fib(12); }
"""
        assert run_rel(src).output == [144]

    def test_mutual_recursion(self):
        src = """
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
func main() { print even(10); print even(7); }
"""
        assert run_rel(src).output == [1, 0]


class TestErrors:
    @pytest.mark.parametrize(
        "source, message",
        [
            ("func main() { print x; }", "undefined name"),
            ("func main() { print f(); }", "unknown function"),
            ("func f(a) { return a; }\nfunc main() { print f(); }",
             "takes 1 argument"),
            ("var v;\nfunc main() { print v[0]; }", "not an array"),
            ("array a[3];\nfunc main() { print a; }", "is an array"),
            ("func f() { return 0; }", "no 'main'"),
            ("func main() { }\nfunc main() { }", "duplicate top-level"),
            ("var x;\nfunc x() { }", "duplicate top-level"),
            ("func f(a, a) { }\nfunc main() { }", "duplicate parameter"),
            ("array z[0];\nfunc main() { }", "size >= 1"),
            ("func main() { if 1 { } }", "expected"),
            ("blah;", "expected a declaration"),
        ],
    )
    def test_rejections(self, source, message):
        with pytest.raises(LangError, match=message):
            compile_source(source)


class TestProfilingIntegration:
    SRC = """
func helper(n) { burn 40; return n; }
func work() {
    i = 0;
    while (i < 25) { helper(i); i = i + 1; }
    return i;
}
func main() { work(); }
"""

    def test_dash_pg_needs_no_source_changes(self):
        plain = compile_source(self.SRC, name="w")
        profiled = compile_source(self.SRC, name="w", profile=True)
        assert not plain.profiled
        assert profiled.profiled
        a, b = CPU(plain), CPU(profiled)
        a.run()
        b.run()
        assert a.output == b.output

    def test_full_pipeline_on_compiled_program(self):
        asm = compile_to_asm(self.SRC)
        cpu, data = run_profiled(asm, name="rel")
        exe = compile_source(self.SRC, name="rel", profile=True)
        profile = analyze(data, exe.symbol_table())
        helper = profile.entry("helper")
        assert helper.ncalls == 25
        assert {p.name for p in helper.parents} == {"work"}
        assert profile.entry("main").percent == pytest.approx(100.0, abs=0.5)

    def test_block_counting_compiled_program(self):
        from repro.machine import block_counts

        exe = compile_source(self.SRC, name="w", count_blocks=True)
        cpu = CPU(exe)
        cpu.run()
        counts = {c.name: c.count for c in block_counts(cpu)}
        assert counts["helper.entry"] == 25


@settings(max_examples=80)
@given(st.data())
def test_expression_oracle_property(data):
    """Property: random Rel expressions agree with Python's arithmetic
    (with C-style division)."""

    def build(depth):
        if depth >= 3 or data.draw(st.booleans()):
            v = data.draw(st.integers(-50, 50))
            return (str(v) if v >= 0 else f"(0 - {abs(v)})"), v
        op = data.draw(st.sampled_from(["+", "-", "*"]))
        ltext, lval = build(depth + 1)
        rtext, rval = build(depth + 1)
        value = {"+": lval + rval, "-": lval - rval, "*": lval * rval}[op]
        return f"({ltext} {op} {rtext})", value

    text, expected = build(0)
    assert eval_expr(text) == expected
