"""The golden gate's shared driver: canned programs -> frozen listings.

The pipeline refactor is behavior-preserving *by construction*: before
``analyze()`` was decomposed into stages, every canned program was run
and its flat + call-graph listings were frozen under ``tests/golden/``.
``tests/test_pipeline_golden.py`` replays the same runs through the
staged pipeline — with a cold cache and again with a warm one — and
asserts the output is byte-identical to the frozen text.

Regenerating the fixtures is a conscious act::

    PYTHONPATH=src python -m tests.pipeline_golden

(only legitimate after a deliberate, reviewed format change).

Everything here is deterministic: the VM's sampling clock is driven by
instruction cycles, not wall time, so the same program always produces
the same gmon data and therefore the same listing.
"""

from __future__ import annotations

from pathlib import Path

from repro.core import AnalysisOptions, analyze
from repro.machine import Monitor, MonitorConfig, assemble, make_cpu, static_call_graph
from repro.machine.programs import PROGRAMS
from repro.report import format_flat_profile, format_graph_profile

#: Where the frozen listings live, one file per (program, variant).
GOLDEN_DIR = Path(__file__).parent / "golden"

#: Cycles per profiling clock tick — the repro-vm default.
CYCLES_PER_TICK = 100

#: Analysis variants frozen per program.  ``default`` is the plain
#: eight-stage analysis; ``static`` adds crawled static arcs (the §4
#: augmentation path, which can change cycle membership).
VARIANTS = ("default", "static")


def canned_profile_data(name: str):
    """Run canned program ``name`` under the monitor; return (exe, data)."""
    exe = assemble(PROGRAMS[name](), name=name, profile=True)
    monitor = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=CYCLES_PER_TICK)
    )
    cpu = make_cpu(exe, monitor)
    cpu.run()
    return exe, monitor.mcleanup(comment=name)


def analysis_options(exe, variant: str, **overrides) -> AnalysisOptions:
    """The AnalysisOptions for one golden variant."""
    if variant == "static":
        overrides.setdefault("static_arcs", sorted(static_call_graph(exe)))
    elif variant != "default":
        raise ValueError(f"unknown golden variant {variant!r}")
    return AnalysisOptions(**overrides)


def listings(profile) -> str:
    """Both listings, concatenated exactly like the repro-gprof output."""
    return "\n".join(
        [format_graph_profile(profile), format_flat_profile(profile)]
    )


def golden_path(name: str, variant: str) -> Path:
    return GOLDEN_DIR / f"{name}.{variant}.txt"


def compute_listing(name: str, variant: str, **analyze_kwargs) -> str:
    """One program's listing text for one variant (fresh run)."""
    exe, data = canned_profile_data(name)
    profile = analyze(
        data,
        exe.symbol_table(),
        analysis_options(exe, variant),
        **analyze_kwargs,
    )
    return listings(profile)


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(PROGRAMS):
        for variant in VARIANTS:
            text = compute_listing(name, variant)
            golden_path(name, variant).write_text(text, encoding="utf-8")
            print(f"froze {golden_path(name, variant)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
