"""Property-based tests over the whole analysis pipeline.

Random profiles (random call graphs + random histograms) must always
satisfy the structural invariants the listings rely on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisOptions, analyze

from tests.helpers import make_symbols, profile_data


@st.composite
def random_profile_inputs(draw):
    """(symbols, arcs, ticks) for a random but well-formed profile."""
    n = draw(st.integers(2, 8))
    names = [f"r{i}" for i in range(n)]
    symbols = make_symbols(*names)
    n_arcs = draw(st.integers(1, 15))
    arcs = []
    for _ in range(n_arcs):
        caller = draw(st.sampled_from(names + ["<spontaneous>"]))
        callee = draw(st.sampled_from(names))
        count = draw(st.integers(0, 30))
        if caller == "<spontaneous>" and count == 0:
            count = 1
        arcs.append((caller, callee, count))
    ticks = {
        name: draw(st.integers(0, 50))
        for name in draw(st.sets(st.sampled_from(names), max_size=n))
    }
    return symbols, arcs, ticks


@settings(max_examples=80, deadline=None)
@given(random_profile_inputs())
def test_pipeline_invariants(inputs):
    symbols, arcs, ticks = inputs
    data = profile_data(symbols, arcs, ticks)
    profile = analyze(data, symbols)

    total = profile.total_seconds
    assert total == pytest.approx(sum(ticks.values()) / 60)

    index_seen = set()
    for entry in profile.graph_entries:
        # indices are 1..N positions and resolve back to the entry
        assert entry.index not in index_seen
        index_seen.add(entry.index)
        assert profile.entry(entry.name) is entry
        # percent and seconds are sane
        assert -1e-9 <= entry.percent <= 100.0 + 1e-9
        assert entry.self_seconds >= -1e-9
        assert entry.child_seconds >= -1e-9
        assert entry.ncalls >= 0 and entry.self_calls >= 0
        # parent call counts sum to the entry's external call count
        if not entry.is_cycle and entry.cycle is None:
            identified = sum(
                p.count for p in entry.parents
                if p.name is not None and not p.intra_cycle
            )
            spontaneous = sum(
                p.count for p in entry.parents if p.name is None
            )
            assert identified + spontaneous == entry.ncalls
        # every referenced relative resolves to an entry (or is
        # spontaneous)
        for line in entry.parents + entry.children:
            if line.name is not None:
                assert profile.entry(line.name) is not None

    # flat self seconds sum to the program total
    flat_sum = sum(f.self_seconds for f in profile.flat_entries)
    assert flat_sum == pytest.approx(total, abs=1e-9)

    # arc shares never exceed the child's own total
    prop = profile.propagation
    for (caller, callee), share in prop.arc_shares.items():
        rep = prop.representative_of(callee)
        assert share.total <= prop.total_time[rep] + 1e-9


@settings(max_examples=40, deadline=None)
@given(random_profile_inputs(), st.integers(1, 5))
def test_auto_break_always_acyclic(inputs, budget):
    """Property: with a big enough budget the pipeline ends acyclic;
    the removed arcs are reported exactly."""
    symbols, arcs, ticks = inputs
    data = profile_data(symbols, arcs, ticks)
    profile = analyze(
        data,
        symbols,
        AnalysisOptions(auto_break_cycles=True, max_removed_arcs=100),
    )
    assert profile.numbered.cycles == []
    for removed in profile.removed_arcs:
        assert profile.graph.arc(removed.caller, removed.callee) is None


@settings(max_examples=40, deadline=None)
@given(random_profile_inputs())
def test_exclusion_is_subtractive(inputs):
    """Property: excluding a routine never increases total time and
    removes the routine from every view."""
    symbols, arcs, ticks = inputs
    data = profile_data(symbols, arcs, ticks)
    full = analyze(data, symbols)
    victim = next(iter(symbols)).name
    reduced = analyze(data, symbols, AnalysisOptions(excluded=[victim]))
    assert reduced.total_seconds <= full.total_seconds + 1e-9
    assert reduced.entry(victim) is None
    for entry in reduced.graph_entries:
        for line in entry.parents + entry.children:
            assert line.name != victim
