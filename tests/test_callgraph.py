"""Unit tests for repro.core.callgraph."""

import pytest

from repro.core.arcs import Arc
from repro.core.callgraph import CallGraph
from repro.core.symbols import SPONTANEOUS
from repro.errors import CallGraphError

from tests.helpers import graph_from_edges


class TestConstruction:
    def test_nodes_created_for_both_endpoints(self):
        g = graph_from_edges(("a", "b"))
        assert "a" in g
        assert "b" in g
        assert len(g) == 2

    def test_extra_nodes(self):
        g = CallGraph(extra_nodes=["lonely"])
        assert "lonely" in g
        assert g.num_arcs() == 0

    def test_parallel_arcs_merge(self):
        g = CallGraph()
        g.add_arc(Arc("a", "b", 3, sites=1))
        g.add_arc(Arc("a", "b", 4, sites=2))
        arc = g.arc("a", "b")
        assert arc.count == 7
        assert arc.sites == 3

    def test_spontaneous_arcs_create_no_edge(self):
        g = CallGraph([Arc(SPONTANEOUS, "main", 2)])
        assert g.spontaneous_calls("main") == 2
        assert g.num_arcs() == 0
        assert list(g.parents("main")) == []

    def test_spontaneous_not_a_node(self):
        g = CallGraph([Arc(SPONTANEOUS, "main", 1)])
        with pytest.raises(CallGraphError):
            g.add_node(SPONTANEOUS)


class TestQueries:
    def test_children_and_parents(self):
        g = graph_from_edges(("a", "b", 2), ("a", "c", 3), ("b", "c", 5))
        assert set(g.children("a")) == {"b", "c"}
        assert set(g.parents("c")) == {"a", "b"}
        assert g.arc("b", "c").count == 5
        assert g.arc("c", "b") is None

    def test_unknown_node_raises(self):
        g = graph_from_edges(("a", "b"))
        with pytest.raises(CallGraphError):
            g.children("zzz")
        with pytest.raises(CallGraphError):
            g.parents("zzz")

    def test_call_counting_excludes_self_calls(self):
        g = graph_from_edges(("a", "b", 10), ("b", "b", 4))
        assert g.incoming_calls("b") == 10
        assert g.self_calls("b") == 4
        assert g.total_calls("b") == 14

    def test_spontaneous_counts_in_incoming(self):
        g = CallGraph([Arc(SPONTANEOUS, "main", 1), Arc("x", "main", 2)])
        assert g.incoming_calls("main") == 3

    def test_roots(self):
        g = graph_from_edges(("main", "a"), ("a", "b"), ("main", "main"))
        assert g.roots() == ["main"]

    def test_num_arcs(self):
        g = graph_from_edges(("a", "b"), ("b", "c"), ("a", "c"))
        assert g.num_arcs() == 3


class TestMutation:
    def test_remove_arc(self):
        g = graph_from_edges(("a", "b", 2), ("b", "a", 1))
        assert g.remove_arc("b", "a") is True
        assert g.arc("b", "a") is None
        assert "a" not in g.parents("a")
        assert g.remove_arc("b", "a") is False

    def test_copy_is_deep(self):
        g = graph_from_edges(("a", "b", 2))
        c = g.copy()
        g.remove_arc("a", "b")
        assert c.arc("a", "b").count == 2

    def test_copy_preserves_spontaneous(self):
        g = CallGraph([Arc(SPONTANEOUS, "main", 3)])
        assert g.copy().spontaneous_calls("main") == 3
