"""Tests for the repro-stacks CLI and the gprof --explain flag."""

import pytest

from repro.cli.stacks_cli import main as stacks_main
from repro.stacks import read_folded


class TestStacksVm:
    def test_canned_program(self, capsys):
        assert stacks_main(["vm", "fib", "--ticks", "5"]) == 0
        out = capsys.readouterr().out
        assert "stack samples" in out
        assert "call tree" in out
        assert "fib" in out
        assert "hot paths" in out

    def test_source_file(self, tmp_path, capsys):
        src = tmp_path / "p.s"
        src.write_text(
            ".func main\n CALL f\n HALT\n.end\n"
            ".func f\n WORK 500\n RET\n.end\n"
        )
        assert stacks_main(["vm", str(src), "--ticks", "5"]) == 0
        out = capsys.readouterr().out
        assert "f" in out

    def test_folded_output(self, tmp_path, capsys):
        folded = tmp_path / "out.folded"
        assert stacks_main(
            ["--folded", str(folded), "vm", "even_odd", "--ticks", "3"]
        ) == 0
        profile = read_folded(folded)
        assert profile.total_ticks > 0
        assert any("even" in s for stack in profile.samples for s in stack)

    def test_stride(self, tmp_path, capsys):
        f1 = tmp_path / "s1.folded"
        f8 = tmp_path / "s8.folded"
        stacks_main(["--folded", str(f1), "vm", "fib", "--ticks", "5"])
        stacks_main(
            ["--folded", str(f8), "vm", "fib", "--ticks", "5", "--stride", "8"]
        )
        capsys.readouterr()
        assert read_folded(f8).total_ticks < read_folded(f1).total_ticks / 4

    def test_unknown_program(self, capsys):
        assert stacks_main(["vm", "nonesuch"]) == 1
        assert "neither" in capsys.readouterr().err


class TestStacksPy:
    def test_samples_a_script(self, tmp_path, capsys):
        script = tmp_path / "busy.py"
        script.write_text(
            "import time\n"
            "def spin():\n"
            "    d = time.process_time() + 0.06\n"
            "    x = 0\n"
            "    while time.process_time() < d:\n"
            "        x += 1\n"
            "    return x\n"
            "spin()\n"
        )
        assert stacks_main(
            ["py", str(script), "--interval", "0.002"]
        ) == 0
        out = capsys.readouterr().out
        assert "stack samples" in out
        assert "spin" in out


class TestExplainFlag:
    def test_blurbs_appended(self, tmp_path, capsys):
        from repro.cli.gprof_cli import main as gprof_main
        from repro.gmon import write_gmon
        from repro.machine import assemble, run_profiled
        from repro.machine.programs import deep

        src = deep()
        exe = assemble(src, name="deep", profile=True)
        image = tmp_path / "deep.vmexe"
        exe.save(image)
        _, data = run_profiled(src, name="deep")
        gmon = tmp_path / "deep.gmon"
        write_gmon(data, gmon)
        assert gprof_main([str(image), str(gmon), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "understanding the call graph profile" in out
        assert "understanding the flat profile" in out
        # without the flag, no blurb
        assert gprof_main([str(image), str(gmon)]) == 0
        assert "understanding" not in capsys.readouterr().out
