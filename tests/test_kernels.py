"""Unit tests for repro.core.kernels: selection, folds, spans, plans.

The backend contract is *exactness*, not closeness: every backend's
bucket/arc folds must equal the python reference integer-for-integer,
and the float kernels must produce bit-identical dicts.  The
cross-backend property sweep lives in ``test_kernels_equivalence``;
these tests pin the mechanics — selection precedence, the overflow
demotion paths, error shapes, memoization — with hand-built inputs.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.core import kernels
from repro.core.cycles import number_graph
from repro.core.kernels import arcs as karcs
from repro.core.kernels import buckets as kbuckets
from repro.core.kernels import prop as kprop
from repro.core.kernels.buckets import _LANE_LIMIT
from repro.core.kernels.spans import build_spans, spans_for
from repro.errors import KernelBackendError
from repro.fleet import ProfileAccumulator

from tests.helpers import graph_from_edges, make_symbols

BACKENDS = kernels.available_backends()


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate every test from ambient backend selection state."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.set_default_backend(None)
    yield
    kernels.set_default_backend(None)


def pack_buckets(counts) -> bytes:
    return struct.pack(f"<{len(counts)}I", *counts)


def pack_arcs(triples) -> bytes:
    return b"".join(struct.pack("<QQI", f, s, c) for f, s, c in triples)


# -- backend selection -------------------------------------------------------


class TestSelection:
    def test_registry_contents(self):
        assert BACKENDS[0] == "python"
        assert "array" in BACKENDS
        if kernels.HAVE_NUMPY:
            assert "numpy" in BACKENDS

    def test_auto_never_picks_python(self):
        assert kernels.get_backend("auto").name != "python"
        assert kernels.get_backend().name != "python"

    def test_auto_prefers_numpy_when_present(self):
        expected = "numpy" if kernels.HAVE_NUMPY else "array"
        assert kernels.get_backend("auto").name == expected
        assert kernels.default_backend_name() == expected

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        assert kernels.get_backend().name == "python"

    def test_forced_outranks_env(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "python")
        kernels.set_default_backend("array")
        assert kernels.get_backend().name == "array"
        kernels.set_default_backend(None)
        assert kernels.get_backend().name == "python"

    def test_explicit_name_outranks_everything(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "array")
        kernels.set_default_backend("array")
        assert kernels.get_backend("python").name == "python"

    def test_unknown_name_raises(self):
        with pytest.raises(KernelBackendError):
            kernels.get_backend("fortran")
        with pytest.raises(KernelBackendError):
            kernels.set_default_backend("fortran")
        # the failed set must not install anything
        assert kernels.get_backend().name != "python"

    def test_names_are_normalized(self):
        assert kernels.get_backend(" Python ").name == "python"


# -- bucket accumulators -----------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestBuckets:
    def make(self, backend):
        return kernels.get_backend(backend).bucket_acc()

    def test_blob_and_seq_folds_agree_with_reference(self, backend):
        vectors = [
            [0, 1, 2, 3, 4],
            [5, 0, 0, 0, 1],
            [0xFFFFFFFF, 0xFFFFFFFF, 0, 1, 2],
        ]
        acc = self.make(backend)
        ref = kbuckets.BucketAccumulator()
        for i, v in enumerate(vectors):
            if i % 2:
                acc.fold_seq(v)
                ref.fold_seq(v)
            else:
                acc.fold_blob(pack_buckets(v))
                ref.fold_blob(pack_buckets(v))
        assert acc.to_list() == ref.to_list()
        assert acc.total() == ref.total()

    def test_empty_accumulator(self, backend):
        acc = self.make(backend)
        assert acc.empty
        assert acc.to_list() == []
        assert acc.total() == 0

    def test_zero_bucket_layout(self, backend):
        acc = self.make(backend)
        acc.fold_seq([])
        assert not acc.empty
        assert acc.to_list() == []

    def test_length_mismatch_raises(self, backend):
        acc = self.make(backend).fold_seq([1, 2, 3])
        with pytest.raises(KernelBackendError):
            acc.fold_seq([1, 2])
        with pytest.raises(KernelBackendError):
            acc.fold_blob(pack_buckets([1, 2, 3, 4]))

    def test_cross_backend_fold(self, backend):
        for other_name in BACKENDS:
            other = kernels.get_backend(other_name).bucket_acc()
            other.fold_blob(pack_buckets([1, 2, 3]))
            acc = self.make(backend).fold_seq([10, 20, 30])
            acc.fold(other)
            assert acc.to_list() == [11, 22, 33]

    def test_fold_of_empty_is_identity(self, backend):
        acc = self.make(backend).fold_seq([7, 8])
        acc.fold(self.make(backend))
        assert acc.to_list() == [7, 8]

    def test_saturated_blob_storm(self, backend):
        """Many maximally-saturated wire inputs stay exact."""
        blob = pack_buckets([0xFFFFFFFF, 1, 0])
        acc = self.make(backend)
        for _ in range(50):
            acc.fold_blob(blob)
        assert acc.to_list() == [50 * 0xFFFFFFFF, 50, 0]

    def test_huge_seq_counts_demote_exactly(self, backend):
        """Counts near the u64 lane limit force the exact path."""
        big = _LANE_LIMIT - 1
        acc = self.make(backend)
        acc.fold_seq([big, 1])
        acc.fold_seq([big, 2])
        acc.fold_blob(pack_buckets([5, 5]))
        assert acc.to_list() == [2 * big + 5, 8]

    def test_demotion_mid_stream(self, backend):
        """Small folds, then an over-limit one, then small again."""
        acc = self.make(backend)
        acc.fold_seq([1, 2])
        acc.fold_seq([_LANE_LIMIT, 0])
        acc.fold_seq([3, 4])
        assert acc.to_list() == [_LANE_LIMIT + 4, 6]


# -- arc tables --------------------------------------------------------------

TRIPLES = [
    (0x1000, 0x2000, 3),
    (0x1004, 0x2000, 2),
    (0x1000, 0x2000, 5),  # duplicate pair, must condense
    (0xFFFFFFFFFFFF, 0x10, 0xFFFFFFFF),
]


@pytest.mark.parametrize("backend", BACKENDS)
class TestArcs:
    def make(self, backend):
        return kernels.get_backend(backend).arc_table()

    def test_blob_fold_condenses(self, backend):
        t = self.make(backend).fold_blob(pack_arcs(TRIPLES))
        assert t.as_dict() == {
            (0x1000, 0x2000): 8,
            (0x1004, 0x2000): 2,
            (0xFFFFFFFFFFFF, 0x10): 0xFFFFFFFF,
        }
        assert len(t) == 3
        assert t.total_count() == 8 + 2 + 0xFFFFFFFF

    def test_items_fold_matches_blob_fold(self, backend):
        a = self.make(backend).fold_blob(pack_arcs(TRIPLES))
        b = self.make(backend).fold_items(TRIPLES)
        assert a.as_dict() == b.as_dict()

    def test_sorted_items_order(self, backend):
        t = self.make(backend).fold_items(TRIPLES)
        keys = [k for k, _ in t.sorted_items()]
        assert keys == sorted(keys)

    def test_empty_blob(self, backend):
        t = self.make(backend).fold_blob(b"")
        assert len(t) == 0
        assert t.as_dict() == {}

    def test_incremental_blobs_accumulate(self, backend):
        t = self.make(backend)
        t.fold_blob(pack_arcs([(1, 2, 3)]))
        t.fold_blob(pack_arcs([(1, 2, 4), (9, 9, 1)]))
        assert t.as_dict() == {(1, 2): 7, (9, 9): 1}

    def test_read_then_write_then_read(self, backend):
        """Reading (which condenses) must not lose later folds."""
        t = self.make(backend)
        t.fold_blob(pack_arcs([(1, 2, 3)]))
        assert t.as_dict() == {(1, 2): 3}
        t.fold_blob(pack_arcs([(1, 2, 10)]))
        assert t.as_dict() == {(1, 2): 13}

    def test_cross_backend_fold(self, backend):
        for other_name in BACKENDS:
            other = kernels.get_backend(other_name).arc_table()
            other.fold_blob(pack_arcs([(1, 2, 3), (4, 5, 6)]))
            t = self.make(backend).fold_items([(1, 2, 1)])
            t.fold(other)
            assert t.as_dict() == {(1, 2): 4, (4, 5): 6}


# -- apportionment spans -----------------------------------------------------


class TestSpans:
    def test_backends_agree_bitwise(self):
        symbols = make_symbols("a", "b", "c", "d")
        # 7 buckets over 400 addresses: every symbol has fractional edges
        spans = build_spans(0, 400, 7, symbols)
        counts = [3, 0, 5, 7, 11, 2, 9]
        results = {
            name: kernels.get_backend(name).apportion(spans, counts, 0.01)
            for name in BACKENDS
        }
        ref = results["python"]
        assert ref  # the layout must actually produce times
        for name, res in results.items():
            assert res == ref, name

    def test_empty_counts_give_empty_times(self):
        symbols = make_symbols("a")
        spans = build_spans(0, 100, 4, symbols)
        for name in BACKENDS:
            assert kernels.get_backend(name).apportion(spans, [0] * 4, 0.01) == {}

    def test_zero_bucket_layout_has_no_entries(self):
        spans = build_spans(0, 100, 0, make_symbols("a"))
        assert spans.entries == []

    def test_out_of_range_symbols_skipped(self):
        symbols = make_symbols("a", "b")  # [0,100) and [100,200)
        spans = build_spans(100, 200, 4, symbols)
        assert [name for name, _ in spans.entries] == ["b"]

    def test_spans_for_memoizes_per_layout(self):
        symbols = make_symbols("a", "b")
        s1 = spans_for(symbols, 0, 200, 8)
        s2 = spans_for(symbols, 0, 200, 8)
        s3 = spans_for(symbols, 0, 200, 16)
        assert s1 is s2
        assert s3 is not s1 and s3.nbuckets == 16

    def test_numpy_overflow_guard_falls_back(self):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy not available")
        from repro.core.kernels.spans import apportion_numpy

        symbols = make_symbols("a", "b")
        spans = build_spans(0, 200, 8, symbols)
        counts = [1 << 62] * 8  # peak * n overflows u64
        ref = kernels.get_backend("python").apportion(spans, counts, 0.01)
        assert apportion_numpy(spans, counts, 0.01) == ref


# -- propagation plans -------------------------------------------------------


def numbered_chain():
    return number_graph(
        graph_from_edges(("main", "work", 4), ("work", "leaf", 8))
    )


class TestPropPlan:
    def test_plan_memoized_until_graph_changes(self):
        numbered = numbered_chain()
        p1 = kprop.plan_for(numbered)
        assert kprop.plan_for(numbered) is p1
        from repro.core.callgraph import Arc

        numbered.graph.add_arc(Arc("main", "leaf", 1))
        p2 = kprop.plan_for(numbered)
        assert p2 is not p1
        assert p2.fingerprint == numbered.graph.num_arcs()

    def test_scalar_and_vector_solves_agree_bitwise(self):
        if not kernels.HAVE_NUMPY:
            pytest.skip("numpy not available")
        # wide fan-in so the vector path crosses _VECTOR_MIN_ARCS
        edges = [(f"c{i}", "hub", i + 1) for i in range(40)]
        edges += [("hub", "leaf", 3)]
        numbered = number_graph(graph_from_edges(*edges))
        plan = kprop.plan_for(numbered)
        self_times = {f"c{i}": 0.25 * i for i in range(40)}
        self_times.update(hub=7.5, leaf=2.25)
        scalar = kprop.solve(plan, self_times, vector=False)
        vector = kprop.solve(plan, self_times, vector=True)
        assert scalar == vector  # dataclass equality: bitwise columns

    def test_solve_skips_uncalled_representatives(self):
        numbered = number_graph(graph_from_edges(("main", "leaf", 0)))
        plan = kprop.plan_for(numbered)
        sol = kprop.solve(plan, {"main": 1.0, "leaf": 2.0}, vector=False)
        # leaf was never called: no time flows up to main
        main_idx = plan.order.index(plan.order[-1])
        assert sol.total_program_time == 3.0
        assert all(ct == 0.0 for ct in sol.child_time)
        assert main_idx >= 0


# -- accumulator integration -------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestAccumulatorBackend:
    def test_backend_name_surfaces(self, backend):
        assert ProfileAccumulator(backend).backend_name == backend

    def test_accumulator_pickles(self, backend):
        acc = ProfileAccumulator(backend, timed=True)
        acc.add_raw(
            __import__("repro.gmon", fromlist=["parse_gmon_raw"]).parse_gmon_raw(
                make_wire_profile()
            )
        )
        clone = pickle.loads(pickle.dumps(acc))
        assert clone.backend_name == backend
        assert clone.result() == acc.result()

    def test_timed_split_counts_inputs(self, backend):
        acc = ProfileAccumulator(backend, timed=True)
        acc.add(make_wire_profile())
        acc.add(make_wire_profile())
        assert acc.timings["inputs"] == 2
        assert acc.timings["bytes"] == 2 * len(make_wire_profile())
        assert acc.timings["parse_seconds"] >= 0.0
        assert acc.timings["fold_seconds"] >= 0.0


def make_wire_profile() -> bytes:
    from repro.core import Histogram, ProfileData, RawArc
    from repro.gmon import dumps_gmon

    hist = Histogram(0, 400, [1, 0, 2, 0], 100)
    return dumps_gmon(
        ProfileData(hist, [RawArc(8, 100, 3)], runs=1, comment="t")
    )
