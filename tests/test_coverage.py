"""Tests for coverage reporting (§2's boolean view of counters)."""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.core.coverage import coverage, format_coverage
from repro.machine import assemble, run_profiled, static_call_graph

from tests.helpers import make_symbols, profile_data

PARTIAL = """
.func main
    PUSH 1
    JNZ taken
    CALL cold_path
taken:
    CALL hot_path
    HALT
.end

.func hot_path
    WORK 20
    CALL shared
    RET
.end

.func cold_path
    WORK 20
    CALL shared
    RET
.end

.func shared
    WORK 5
    RET
.end
"""


@pytest.fixture()
def report():
    cpu, data = run_profiled(PARTIAL, name="partial")
    exe = assemble(PARTIAL, name="partial", profile=True)
    profile = analyze(
        data,
        exe.symbol_table(),
        AnalysisOptions(static_arcs=sorted(static_call_graph(exe))),
    )
    return coverage(profile)


class TestCoverage:
    def test_called_and_never_called(self, report):
        assert {"main", "hot_path", "shared"} <= report.called
        assert "cold_path" in report.never_called

    def test_arc_coverage(self, report):
        assert report.traversed_arcs == {
            ("main", "hot_path"),
            ("hot_path", "shared"),
        }
        assert report.untraversed_arcs == {
            ("main", "cold_path"),
            ("cold_path", "shared"),
        }
        assert report.arc_coverage == pytest.approx(0.5)

    def test_routine_coverage_fraction(self, report):
        assert report.routine_coverage == pytest.approx(3 / 4)

    def test_replacement_check(self, report):
        # §2: "to check that one implementation of an abstraction
        # completely replaces a previous one."
        assert report.replaced_completely("cold_path", "hot_path")
        assert not report.replaced_completely("hot_path", "cold_path")
        assert not report.replaced_completely("ghost", "hot_path")

    def test_format(self, report):
        text = format_coverage(report)
        assert "never called:" in text
        assert "cold_path" in text
        assert "cold_path -> shared" in text

    def test_full_coverage_without_static_arcs(self):
        # With no static augmentation, only traversed arcs are known,
        # so arc coverage degenerates to 100% — documented behaviour.
        symbols = make_symbols("main", "f")
        data = profile_data(symbols, [("main", "f", 1)], ticks={"f": 6})
        rep = coverage(analyze(data, symbols))
        assert rep.arc_coverage == 1.0

    def test_empty_profile(self):
        symbols = make_symbols("main")
        rep = coverage(analyze(profile_data(symbols, []), symbols))
        assert rep.called == frozenset()
        assert rep.never_called == frozenset({"main"})
        assert rep.routine_coverage == 0.0
