"""Cross-validation of the Rel program library against the assembly one."""

import pytest

from repro.core import analyze
from repro.lang import compile_source
from repro.lang.programs import REL_PROGRAMS, abstraction, even_odd, fib, gcd_chain, sieve
from repro.machine import CPU, Monitor, MonitorConfig, run_unprofiled
from repro.machine import programs as asm_programs


def run_rel(source, name="p.rl", profile=False):
    exe = compile_source(source, name=name, profile=profile)
    monitor = (
        Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=25))
        if profile
        else None
    )
    cpu = CPU(exe, monitor)
    cpu.run()
    return cpu, monitor, exe


class TestCrossValidation:
    @pytest.mark.parametrize("n", [0, 1, 10, 14])
    def test_fib_matches_assembly(self, n):
        rel, _, _ = run_rel(fib(n))
        asm = run_unprofiled(asm_programs.fib(n))
        assert rel.output == asm.output

    @pytest.mark.parametrize("n", [0, 7, 8, 25])
    def test_even_odd_matches_assembly(self, n):
        rel, _, _ = run_rel(even_odd(n))
        asm = run_unprofiled(asm_programs.even_odd(n))
        assert rel.output == asm.output

    def test_abstraction_output_pattern(self):
        rel, _, _ = run_rel(abstraction(iterations=4))
        assert rel.output == [1, 2, 3] * 4


class TestNewWorkloads:
    def test_sieve_counts_primes(self):
        rel, _, _ = run_rel(sieve(limit=100))
        assert rel.output == [25]  # primes below 100

    def test_gcd_chain_value(self):
        import math

        rel, _, _ = run_rel(gcd_chain(rounds=20))
        expected = sum(math.gcd(i * 91, i + 133) for i in range(1, 21))
        assert rel.output == [expected]


class TestProfiledCompiledPrograms:
    @pytest.mark.parametrize("name", sorted(REL_PROGRAMS))
    def test_every_program_profiles_cleanly(self, name):
        src = REL_PROGRAMS[name]()
        plain, _, _ = run_rel(src, name=name)
        cpu, monitor, exe = run_rel(src, name=name, profile=True)
        assert cpu.output == plain.output
        profile = analyze(monitor.mcleanup(), exe.symbol_table())
        assert profile.graph_entries
        assert profile.entry("main").percent == pytest.approx(100.0, abs=1.0)

    def test_compiled_cycle_detected(self):
        cpu, monitor, exe = run_rel(even_odd(30), profile=True)
        profile = analyze(monitor.mcleanup(), exe.symbol_table())
        assert len(profile.numbered.cycles) == 1
        assert set(profile.numbered.cycles[0].members) == {"even", "odd"}

    def test_compiler_overhead_in_band(self):
        # The §7 claim must hold for compiled code, not just hand asm.
        src = abstraction(iterations=60)
        plain, _, _ = run_rel(src)
        profiled, _, _ = run_rel(src, profile=True)
        overhead = (profiled.cycles - plain.cycles) / plain.cycles
        assert 0.02 <= overhead <= 0.30
