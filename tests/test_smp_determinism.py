"""Determinism battery: the merged SMP profile is a pure function of
the workload.

The tentpole claim of the multi-CPU machine: profiling N processes of
a program yields byte-identical merged ``gmon`` output for **any** CPU
count, scheduler seed, scheduling policy, and slice quantum — and every
process finishes in the identical machine state.  Virtual time is
process-local by construction (instruction costs are static; the
monitoring routine's cost comes from the process's private arc table),
so the schedule can only change *which shard* an event lands in, never
the event stream itself; the fleet-algebra merge then erases the
partition.  This suite turns that argument into a gate, over canned
programs and hypothesis-generated random ones.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.gmon import dumps_gmon
from repro.machine import assemble
from repro.machine.programs import PROGRAMS
from repro.machine.smp import POLICIES, SliceScheduler, SMPMachine

#: Machine widths every identity claim is checked across.
CPU_COUNTS = (1, 2, 4, 8)


def proc_state(proc):
    """Every schedule-independent observable of one finished process."""
    cpu = proc.cpu
    state = {
        "pc": cpu.pc,
        "cycles": cpu.cycles,
        "instructions": cpu.instructions_executed,
        "stack": list(cpu.stack),
        "globals": list(cpu.globals),
        "output": list(cpu.output),
        "halted": cpu.halted,
        "irqs": cpu.interrupts_delivered,
    }
    if proc.monitor is not None:
        # the private cost table: per-process mcount statistics must not
        # depend on the schedule either
        state["arcs"] = proc.monitor.arc_table.arcs()
        state["lookups"] = proc.monitor.stats.lookups
        state["probes"] = proc.monitor.stats.probes
    return state


def run_schedule(
    source,
    name="prog",
    ncpus=2,
    nprocs=3,
    policy="rr",
    seed=0,
    quantum=500,
    engine="fast",
    max_rounds=None,
):
    """Run one schedule; return (merged gmon bytes, per-process states)."""
    exe = assemble(source, name=name, profile=True)
    machine = SMPMachine(
        exe,
        ncpus=ncpus,
        nprocs=nprocs,
        policy=policy,
        seed=seed,
        quantum=quantum,
        engine=engine,
        cycles_per_tick=25,
    )
    machine.run(max_rounds=max_rounds)
    return (
        dumps_gmon(machine.merged_profile(comment=name)),
        [proc_state(p) for p in machine.procs],
    )


# --------------------------------------------------------------------------
# Canned programs: the full schedule sweep.
# --------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["fib", "dispatch"])
def test_canned_identical_across_all_schedules(name):
    """CPU count x seed x policy: 48 schedules, one set of bytes."""
    source = PROGRAMS[name]()
    baseline = run_schedule(source, name=name, ncpus=1)
    for ncpus in CPU_COUNTS:
        for seed in (0, 1, 2):
            for policy in POLICIES:
                got = run_schedule(
                    source,
                    name=name,
                    ncpus=ncpus,
                    policy=policy,
                    seed=seed,
                )
                assert got == baseline, (
                    f"{name}: schedule ({ncpus} cpus, {policy}, seed {seed}) "
                    "changed the merged profile or a process's state"
                )


@pytest.mark.parametrize("name", ["netcycle", "even_odd", "skewed"])
def test_canned_identical_spot_checks(name):
    """The rest of the corpus at a lighter sweep."""
    source = PROGRAMS[name]()
    baseline = run_schedule(source, name=name, ncpus=1)
    for ncpus, policy, seed in [(2, "random", 1), (4, "affinity", 2), (8, "skew", 0)]:
        assert (
            run_schedule(source, name=name, ncpus=ncpus, policy=policy, seed=seed)
            == baseline
        )


@pytest.mark.parametrize("quantum", [1, 37, 500, 5000])
def test_quantum_extremes_identical(quantum):
    """From one-cycle slices to slices longer than the program."""
    source = PROGRAMS["dispatch"]()
    baseline = run_schedule(source, name="dispatch", ncpus=1)
    assert (
        run_schedule(
            source, name="dispatch", ncpus=4, policy="random", seed=3, quantum=quantum
        )
        == baseline
    )


def test_more_processes_than_cpus_identical():
    """Oversubscription (M > N) exercises the runnable-queue rotation."""
    source = PROGRAMS["fib"]()
    baseline = run_schedule(source, name="fib", ncpus=1, nprocs=7)
    for ncpus in (2, 4, 8):
        assert run_schedule(
            source, name="fib", ncpus=ncpus, nprocs=7, policy="random", seed=5
        ) == baseline


def test_global_lock_strawman_same_data():
    """The strawman layout funnels into one shard but must record the
    identical union of events — only its cost differs."""
    source = PROGRAMS["dispatch"]()
    exe = assemble(source, name="dispatch", profile=True)
    percpu = SMPMachine(exe, ncpus=4, nprocs=3, seed=2, cycles_per_tick=25).run()
    locked = SMPMachine(
        exe, ncpus=4, nprocs=3, seed=2, cycles_per_tick=25, sharding="global-lock"
    ).run()
    assert len(locked.shards) == 1
    assert dumps_gmon(locked.merged_profile(comment="dispatch")) == dumps_gmon(
        percpu.merged_profile(comment="dispatch")
    )


# --------------------------------------------------------------------------
# Hypothesis: random programs, random schedules.
# --------------------------------------------------------------------------


@st.composite
def small_programs(draw):
    """A terminating multi-function program: calls, loops, WORK — the
    constructs whose tick placement the schedule could plausibly move."""
    n_funcs = draw(st.integers(2, 4))
    names = [f"fn{i}" for i in range(n_funcs)]
    funcs = []
    for i in range(n_funcs):
        body = [f"PUSH {draw(st.integers(1, 4))}", "STORE 0", "loop:"]
        for _ in range(draw(st.integers(1, 3))):
            kind = draw(st.sampled_from(["work", "call", "calli"]))
            if kind == "work":
                body.append(f"WORK {draw(st.integers(0, 90))}")
            elif kind == "call" and i + 1 < n_funcs:
                body.append(f"CALL {draw(st.sampled_from(names[i + 1:]))}")
            elif kind == "calli" and i + 1 < n_funcs:
                body.append(f"PUSH &{draw(st.sampled_from(names[i + 1:]))}")
                body.append("CALLI")
            else:
                body.append(f"WORK {draw(st.integers(1, 30))}")
        body += ["LOAD 0", "PUSH 1", "SUB", "STORE 0", "LOAD 0", "JNZ loop"]
        body.append("HALT" if i == 0 else "RET")
        funcs.append(
            f".func {'main' if i == 0 else names[i]}\n "
            + "\n ".join(body)
            + "\n.end\n"
        )
    return "".join(funcs)


@settings(max_examples=20, deadline=None)
@given(
    small_programs(),
    st.sampled_from(CPU_COUNTS),
    st.integers(0, 3),
    st.sampled_from(POLICIES),
    st.sampled_from([50, 333, 1000]),
    st.integers(2, 5),
)
def test_random_programs_schedule_independent(
    source, ncpus, seed, policy, quantum, nprocs
):
    baseline = run_schedule(source, nprocs=nprocs, ncpus=1)
    got = run_schedule(
        source,
        ncpus=ncpus,
        nprocs=nprocs,
        policy=policy,
        seed=seed,
        quantum=quantum,
    )
    assert got == baseline


# --------------------------------------------------------------------------
# The scheduler itself replays deterministically.
# --------------------------------------------------------------------------


def plan_trace(policy, seed, rounds=40, pids=(0, 1, 2, 3, 4), ncpus=3):
    sched = SliceScheduler(policy, seed=seed, quantum=100)
    return [sched.plan(r, list(pids), ncpus) for r in range(rounds)]


@pytest.mark.parametrize("policy", POLICIES)
def test_scheduler_replays_identically(policy):
    assert plan_trace(policy, seed=9) == plan_trace(policy, seed=9)


@pytest.mark.parametrize("policy", POLICIES)
def test_scheduler_plan_shape(policy):
    """At most one process per CPU, no pid dispatched twice per round."""
    for plan in plan_trace(policy, seed=4):
        cpus = [cpu for _, cpu, _ in plan]
        pids = [pid for pid, _, _ in plan]
        assert len(set(cpus)) == len(cpus) <= 3
        assert len(set(pids)) == len(pids)
        assert all(q >= 1 for _, _, q in plan)


def test_seeds_change_the_schedule_not_the_profile():
    """Sanity: different seeds really do produce different schedules
    (otherwise the identity claims above would be vacuous)."""
    assert plan_trace("random", seed=0) != plan_trace("random", seed=1)


# --------------------------------------------------------------------------
# Guard rails.
# --------------------------------------------------------------------------


def test_constructor_validation():
    exe = assemble(PROGRAMS["fib"](), profile=True)
    with pytest.raises(MachineError):
        SMPMachine(exe, ncpus=0)
    with pytest.raises(MachineError):
        SMPMachine(exe, ncpus=2, nprocs=0)
    with pytest.raises(MachineError):
        SMPMachine(exe, ncpus=2, sharding="numa")
    with pytest.raises(MachineError):
        SMPMachine(exe, ncpus=2, policy="lottery")
    with pytest.raises(MachineError):
        SMPMachine(exe, ncpus=2, quantum=0)
    plain = assemble(PROGRAMS["fib"](), profile=False)
    with pytest.raises(MachineError):
        SMPMachine(plain, ncpus=2, profile=True)
    # unprofiled machines are fine — they just gather nothing
    machine = SMPMachine(plain, ncpus=2, profile=False)
    machine.run()
    assert machine.halted and machine.total_ticks() == 0


def test_sharded_monitor_rejects_per_process_snapshot():
    exe = assemble(PROGRAMS["fib"](), profile=True)
    machine = SMPMachine(exe, ncpus=2)
    machine.run()
    with pytest.raises(MachineError):
        machine.procs[0].monitor.snapshot()
    with pytest.raises(MachineError):
        machine.procs[0].monitor.reset()
