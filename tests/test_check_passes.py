"""Tests for the static analysis passes (GP1xx / GP2xx) and the
zero-false-positive guarantee over the canned program library."""

import pytest

from repro.check import Severity, check_executable, static_passes
from repro.check.passes import (
    check_control_flow,
    check_cycle_agreement,
    check_dead_but_called,
    check_dead_routines,
    check_indirect_calls,
    check_instrumentation,
)
from repro.core.arcs import RawArc
from repro.machine import assemble, run_profiled
from repro.machine.isa import Instruction, Op
from repro.machine.programs import PROGRAMS

BROKEN = """
.func main
    CALL f
    HALT
.end
.func f
    RET
    WORK 5
.end
.func orphan
    WORK 1
.end
"""


def codes(diags):
    return sorted({d.code for d in diags})


class TestControlFlow:
    def test_unreachable_block_gets_gp101(self):
        exe = assemble(BROKEN)
        diags = check_control_flow(exe)
        gp101 = [d for d in diags if d.code == "GP101"]
        assert len(gp101) == 1
        assert gp101[0].routine == "f"
        assert gp101[0].severity is Severity.WARNING

    def test_fall_off_end_gets_gp103(self):
        exe = assemble(BROKEN)
        gp103 = [d for d in check_control_flow(exe) if d.code == "GP103"]
        assert [d.routine for d in gp103] == ["orphan"]
        assert gp103[0].severity is Severity.ERROR

    def test_dead_code_is_not_double_reported(self):
        # The WORK after RET falls off the end too, but GP101 owns it.
        exe = assemble(".func main\n RET\n WORK 1\n.end\n")
        assert codes(check_control_flow(exe)) == ["GP101"]

    def test_cross_routine_jump_gets_gp108(self):
        src = ".func main\n JMP f\n HALT\n.end\n.func f\n RET\n.end\n"
        exe = assemble(src)
        diags = check_control_flow(exe)
        assert codes(diags) == ["GP101", "GP108"]  # HALT after JMP is dead
        gp108 = [d for d in diags if d.code == "GP108"][0]
        assert gp108.routine == "main"

    def test_empty_routine_gets_gp103(self):
        src = ".func f\n.end\n.func main\n HALT\n.end\n"
        exe = assemble(src)
        assert codes(check_control_flow(exe)) == ["GP103"]


class TestDeadRoutines:
    def test_orphan_routine_gets_gp102(self):
        exe = assemble(BROKEN)
        diags = check_dead_routines(exe)
        assert [d.routine for d in diags] == ["orphan"]
        assert diags[0].code == "GP102"

    def test_address_taken_routine_is_alive(self):
        src = """
.func main
    PUSH &handler
    CALL invoke
    HALT
.end
.func invoke
    CALLI
    RET
.end
.func handler
    RET
.end
"""
        assert check_dead_routines(assemble(src)) == []

    def test_transitively_reachable_is_alive(self):
        src = (".func main\n CALL a\n HALT\n.end\n"
               ".func a\n CALL b\n RET\n.end\n"
               ".func b\n RET\n.end\n")
        assert check_dead_routines(assemble(src)) == []


class TestIndirectCalls:
    def test_calli_without_candidates_gets_gp104(self):
        src = (".globals 1\n.func main\n GLOAD 0\n CALLI\n HALT\n.end\n")
        diags = check_indirect_calls(assemble(src))
        assert codes(diags) == ["GP104"]
        assert diags[0].routine == "main"

    def test_any_address_taken_silences_gp104(self):
        src = """
.globals 1
.func main
    PUSH &f
    GSTORE 0
    GLOAD 0
    CALLI
    HALT
.end
.func f
    RET
.end
"""
        assert check_indirect_calls(assemble(src)) == []

    def test_program_without_calli_is_silent(self):
        assert check_indirect_calls(assemble(PROGRAMS["fib"]())) == []


class TestInstrumentation:
    SRC = ".func main\n CALL f\n HALT\n.end\n.func f\n WORK 5\n RET\n.end\n"

    def test_clean_profiled_build(self):
        assert check_instrumentation(assemble(self.SRC, profile=True)) == []

    def test_clean_unprofiled_build(self):
        assert check_instrumentation(assemble(self.SRC, profile=False)) == []

    def test_stripped_mcount_gets_gp201(self):
        exe = assemble(self.SRC, profile=True)
        f = exe.function_named("f")
        exe.instructions[f.entry // 4] = Instruction(Op.NOP)
        diags = check_instrumentation(exe)
        assert codes(diags) == ["GP201"]
        assert diags[0].routine == "f"

    def test_duplicate_mcount_gets_gp202(self):
        exe = assemble(self.SRC, profile=True)
        f = exe.function_named("f")
        exe.instructions[f.entry // 4 + 1] = Instruction(Op.MCOUNT)
        assert codes(check_instrumentation(exe)) == ["GP202"]

    def test_misplaced_mcount_gets_gp203(self):
        exe = assemble(self.SRC, profile=True)
        f = exe.function_named("f")
        idx = f.entry // 4
        exe.instructions[idx] = Instruction(Op.NOP)
        exe.instructions[idx + 1] = Instruction(Op.MCOUNT)
        assert codes(check_instrumentation(exe)) == ["GP203"]

    def test_stray_mcount_in_unprofiled_routine_gets_gp204(self):
        exe = assemble(self.SRC, profile=False)
        f = exe.function_named("f")
        exe.instructions[f.entry // 4] = Instruction(Op.MCOUNT)
        assert codes(check_instrumentation(exe)) == ["GP204"]


class TestStaticDynamicCrossChecks:
    HIDDEN_CYCLE = """
.globals 1
.func main
    PUSH &b
    GSTORE 0
    PUSH 3
    CALL a
    HALT
.end
.func a
    STORE 0
    LOAD 0
    JZ done
    LOAD 0
    PUSH 1
    SUB
    GLOAD 0
    CALLI
done:
    RET
.end
.func b
    CALL a
    RET
.end
"""

    def test_computed_call_cycle_gets_gp105(self):
        exe = assemble(self.HIDDEN_CYCLE, profile=True)
        _, data = run_profiled(self.HIDDEN_CYCLE)
        diags = check_cycle_agreement(exe, data)
        assert codes(diags) == ["GP105"]

    def test_statically_apparent_cycle_is_silent(self):
        src = PROGRAMS["netcycle"]()
        exe = assemble(src, name="netcycle", profile=True)
        _, data = run_profiled(src, name="netcycle")
        assert check_cycle_agreement(exe, data) == []

    def test_called_dead_routine_gets_gp106(self):
        src = ".func main\n HALT\n.end\n.func orphan\n RET\n.end\n"
        exe = assemble(src, profile=True)
        _, data = run_profiled(src)
        data.arcs.append(RawArc(0, exe.function_named("orphan").entry, 5))
        diags = check_dead_but_called(exe, data)
        assert codes(diags) == ["GP106"]

    def test_uncalled_dead_routine_is_gp102_only(self):
        src = ".func main\n HALT\n.end\n.func orphan\n RET\n.end\n"
        exe = assemble(src, profile=True)
        _, data = run_profiled(src)
        assert check_dead_but_called(exe, data) == []


class TestSeededAcceptance:
    """ISSUE acceptance: seeded defects map to their code families."""

    def test_unreachable_routine_yields_gp1xx(self):
        report = check_executable(assemble(BROKEN, profile=True))
        assert any(c.startswith("GP1") for c in report.codes())
        assert "GP102" in report.codes()

    def test_stripped_and_duplicated_mcount_yield_gp2xx(self):
        src = TestInstrumentation.SRC
        exe = assemble(src, profile=True)
        f = exe.function_named("f")
        exe.instructions[f.entry // 4] = Instruction(Op.NOP)
        assert "GP201" in check_executable(exe).codes()
        exe2 = assemble(src, profile=True)
        f2 = exe2.function_named("f")
        exe2.instructions[f2.entry // 4 + 1] = Instruction(Op.MCOUNT)
        assert "GP202" in check_executable(exe2).codes()


class TestNoFalsePositives:
    """Every canned program — and its fresh gmon — lints clean."""

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_profiled_program_and_gmon_are_clean(self, name):
        src = PROGRAMS[name]()
        exe = assemble(src, name=name, profile=True)
        _, data = run_profiled(src, name=name)
        report = check_executable(exe, [data], [f"{name}.gmon"])
        assert len(report) == 0, report.render_text()

    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    def test_unprofiled_build_is_clean(self, name):
        exe = assemble(PROGRAMS[name](), name=name, profile=False)
        assert static_passes(exe) == []
