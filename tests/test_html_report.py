"""Tests for the HTML rendering of the call graph profile."""

import pytest

from repro.report.html import to_html

from tests.test_figure4 import figure4_profile


@pytest.fixture(scope="module")
def page():
    return to_html(figure4_profile(), title="figure 4")


class TestHtml:
    def test_is_a_complete_document(self, page):
        assert page.startswith("<!DOCTYPE html>")
        assert page.endswith("</html>")
        assert "<title>figure 4</title>" in page

    def test_every_entry_has_anchor(self, page):
        profile = figure4_profile()
        for entry in profile.graph_entries:
            assert f"id='entry-{entry.index}'" in page

    def test_index_references_are_links(self, page):
        profile = figure4_profile()
        idx = profile.index_of("EXAMPLE")
        # CALLER1's entry links to EXAMPLE's anchor.
        assert f'<a href="#entry-{idx}">EXAMPLE</a>' in page

    def test_figure4_numbers_present(self, page):
        for token in ("41.5", "10+4", "4/10", "6/10", "20/40", "0/5"):
            assert token in page

    def test_cycle_annotation_escaped(self, page):
        # '<cycle 1>' must render literally, not as a tag.
        assert "SUB1 &lt;cycle 1&gt;" in page
        assert "<cycle 1>" not in page

    def test_min_percent_prunes(self):
        full = to_html(figure4_profile())
        pruned = to_html(figure4_profile(), min_percent=30.0)
        assert len(pruned) < len(full)
        assert "EXAMPLE" in pruned

    def test_never_called_section(self, page):
        # figure-4 workload uses every symbol, so build a case with one.
        from tests.helpers import make_symbols, profile_data
        from repro.core import analyze

        symbols = make_symbols("main", "ghost")
        profile = analyze(
            profile_data(symbols, [("<spontaneous>", "main", 1)],
                         ticks={"main": 6}),
            symbols,
        )
        text = to_html(profile)
        assert "routines never called" in text
        assert "ghost" in text


class TestCliHtml:
    def test_gprof_cli_writes_html(self, tmp_path, capsys):
        from repro.cli.gprof_cli import main as gprof_main
        from repro.gmon import write_gmon
        from repro.machine import assemble, run_profiled
        from repro.machine.programs import deep

        src = deep()
        exe = assemble(src, name="deep", profile=True)
        image = tmp_path / "deep.vmexe"
        exe.save(image)
        _, data = run_profiled(src, name="deep")
        gmon = tmp_path / "deep.gmon"
        write_gmon(data, gmon)
        html_path = tmp_path / "report.html"
        assert gprof_main(
            [str(image), str(gmon), "--html", str(html_path)]
        ) == 0
        content = html_path.read_text()
        assert "level3" in content
        assert "entry-1" in content

    def test_gprof_cli_coverage_flag(self, tmp_path, capsys):
        from repro.cli.gprof_cli import main as gprof_main
        from repro.gmon import write_gmon
        from repro.machine import assemble, run_profiled

        src = """
.func main
    PUSH 1
    JNZ skip
    CALL never
skip:
    WORK 60
    HALT
.end
.func never
    RET
.end
"""
        exe = assemble(src, name="p", profile=True)
        image = tmp_path / "p.vmexe"
        exe.save(image)
        _, data = run_profiled(src, name="p")
        gmon = tmp_path / "p.gmon"
        write_gmon(data, gmon)
        assert gprof_main(
            [str(image), str(gmon), "--static", "--coverage", "--flat-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "coverage:" in out
        assert "main -> never" in out
