"""Shared builders for the test suite."""

from __future__ import annotations

from repro.core import (
    Arc,
    CallGraph,
    Histogram,
    ProfileData,
    RawArc,
    Symbol,
    SymbolTable,
)

#: Width given to each routine in synthetic symbol tables.
SYM_SIZE = 100


def make_symbols(*names: str) -> SymbolTable:
    """A symbol table with each routine occupying SYM_SIZE addresses."""
    return SymbolTable(
        Symbol(i * SYM_SIZE, name, (i + 1) * SYM_SIZE)
        for i, name in enumerate(names)
    )


def addr_of(symbols: SymbolTable, name: str, offset: int = 0) -> int:
    """An address inside routine ``name``."""
    return symbols.by_name(name).address + offset


def graph_from_edges(*edges: tuple[str, str] | tuple[str, str, int]) -> CallGraph:
    """A call graph from (caller, callee[, count]) tuples (default count 1)."""
    graph = CallGraph()
    for edge in edges:
        caller, callee = edge[0], edge[1]
        count = edge[2] if len(edge) > 2 else 1
        graph.add_arc(Arc(caller, callee, count))
    return graph


def profile_data(
    symbols: SymbolTable,
    arc_list: list[tuple[str, str, int]],
    ticks: dict[str, int] | None = None,
    profrate: int = 60,
) -> ProfileData:
    """ProfileData with symbolic arcs and per-routine tick counts.

    Arcs are laid out so that each (caller, callee) pair gets its own
    call-site address inside the caller.  ``ticks`` maps routine name to
    the number of PC samples to place at the routine's entry.
    """
    hist = Histogram.for_range(symbols.low_pc, symbols.high_pc, 1.0, profrate)
    for name, n in (ticks or {}).items():
        addr = symbols.by_name(name).address
        for _ in range(n):
            assert hist.record(addr)
    raw: list[RawArc] = []
    site_counter: dict[str, int] = {}
    for caller, callee, count in arc_list:
        self_pc = symbols.by_name(callee).address
        if caller == "<spontaneous>":
            raw.append(RawArc(0, self_pc, count))
            continue
        slot = site_counter.get(caller, 0)
        site_counter[caller] = slot + 1
        from_pc = symbols.by_name(caller).address + 4 + 4 * slot
        assert from_pc < symbols.by_name(caller).end
        raw.append(RawArc(from_pc, self_pc, count))
    return ProfileData(hist, raw)
