"""Tests for asynchronous interrupts and their spontaneous arcs (§3.1)."""

import pytest

from repro.core import analyze
from repro.errors import MachineError
from repro.machine import (
    CPU,
    InterruptSource,
    Monitor,
    MonitorConfig,
    assemble,
)

PROGRAM = """
.func main
    PUSH 40
    STORE 0
loop:
    CALL worker
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func worker
    WORK 30
    RET
.end

.func irq_handler
    WORK 12
    RET
.end
"""


def run_with_irq(period=150, profile=True, cycles_per_tick=10):
    exe = assemble(PROGRAM, name="irq", profile=profile)
    monitor = (
        Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=cycles_per_tick))
        if profile
        else None
    )
    cpu = CPU(exe, monitor, interrupts=[InterruptSource("irq_handler", period)])
    cpu.run()
    return exe, cpu, monitor


class TestDelivery:
    def test_interrupts_fire_periodically(self):
        exe, cpu, _ = run_with_irq(period=100)
        # roughly one delivery per 100 cycles (handlers do not nest)
        assert cpu.interrupts_delivered >= cpu.cycles // 200
        assert cpu.halted

    def test_program_output_unaffected(self):
        exe, cpu, _ = run_with_irq()
        plain = CPU(assemble(PROGRAM, profile=False))
        plain.run()
        assert cpu.output == plain.output

    def test_handlers_do_not_nest(self):
        # A period shorter than the handler body must not stack frames.
        exe = assemble(PROGRAM, profile=False)
        cpu = CPU(exe, interrupts=[InterruptSource("irq_handler", 5)])
        cpu.run(max_instructions=2000)
        assert sum(1 for f in cpu.frames if f.interrupted) <= 1

    def test_bad_period_rejected(self):
        with pytest.raises(MachineError):
            InterruptSource("irq_handler", 0)

    def test_unknown_handler_rejected(self):
        exe = assemble(PROGRAM, profile=False)
        with pytest.raises(MachineError):
            CPU(exe, interrupts=[InterruptSource("ghost", 100)])

    def test_phase_controls_first_delivery(self):
        exe = assemble(PROGRAM, profile=False)
        early = CPU(exe, interrupts=[InterruptSource("irq_handler", 10_000, phase=5)])
        early.run(max_instructions=50)
        assert early.interrupts_delivered == 1


class TestSpontaneousArcs:
    def test_handler_arcs_are_spontaneous(self):
        # "the monitoring routine may know the destination of an arc
        # (the callee), but find it difficult or impossible to determine
        # the source... Such anomalous invocations are declared
        # 'spontaneous'."
        exe, cpu, monitor = run_with_irq()
        data = monitor.mcleanup()
        handler_entry = exe.function_named("irq_handler").entry
        handler_arcs = [a for a in data.arcs if a.self_pc == handler_entry]
        assert len(handler_arcs) == 1
        assert handler_arcs[0].from_pc == 0  # spontaneous
        assert handler_arcs[0].count == cpu.interrupts_delivered

    def test_analysis_shows_spontaneous_parent(self):
        exe, cpu, monitor = run_with_irq()
        profile = analyze(monitor.mcleanup(), exe.symbol_table())
        entry = profile.entry("irq_handler")
        assert entry.ncalls == cpu.interrupts_delivered
        assert entry.parents[0].name is None  # <spontaneous>

    def test_handler_time_not_charged_to_interrupted_code(self):
        # The handler keeps its own time: no arc means no propagation.
        exe, cpu, monitor = run_with_irq(period=80)
        profile = analyze(monitor.mcleanup(), exe.symbol_table())
        handler = profile.entry("irq_handler")
        assert handler.self_seconds > 0
        # worker's entry must not list irq_handler as a child
        worker_children = {c.name for c in profile.entry("worker").children}
        assert "irq_handler" not in worker_children


class TestStackSamplesDuringInterrupts:
    def test_stack_walk_spans_interrupt_frames(self):
        from repro.stacks.vm import VMStackMonitor

        exe = assemble(PROGRAM, name="irq", profile=False)
        mon = VMStackMonitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=7)
        )
        cpu = CPU(exe, mon, interrupts=[InterruptSource("irq_handler", 90)])
        mon.bind(cpu)
        cpu.run()
        stacks_with_handler = [
            s for s in mon.stack_profile.samples if s[-1] == "irq_handler"
        ]
        assert stacks_with_handler
        # the interrupted routine appears beneath the handler
        assert any(len(s) >= 2 and s[-2] in ("main", "worker")
                   for s in stacks_with_handler)
