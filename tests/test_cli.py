"""Tests for the command-line tools."""

import json

import pytest

from repro.cli.gprof_cli import main as gprof_main
from repro.cli.kgmon_cli import main as kgmon_main
from repro.cli.prof_cli import main as prof_main
from repro.gmon import read_gmon, write_gmon
from repro.machine import assemble, run_profiled
from repro.machine.programs import abstraction, netcycle


@pytest.fixture()
def netcycle_files(tmp_path):
    src = netcycle()
    exe = assemble(src, name="netcycle", profile=True)
    image = tmp_path / "netcycle.vmexe"
    exe.save(image)
    gmons = []
    for i in range(2):
        _, data = run_profiled(src, name="netcycle")
        path = tmp_path / f"run{i}.gmon"
        write_gmon(data, path)
        gmons.append(path)
    return image, gmons


class TestGprofCli:
    def test_basic_listing(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main([str(image), str(gmons[0])]) == 0
        out = capsys.readouterr().out
        assert "call graph profile:" in out
        assert "flat profile:" in out
        assert "ip_input" in out

    def test_multiple_gmons_are_summed(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        gprof_main([str(image), str(gmons[0])])
        one = capsys.readouterr().out
        gprof_main([str(image)] + [str(g) for g in gmons])
        two = capsys.readouterr().out
        t1 = float(one.split("total: ")[1].split(" ")[0])
        t2 = float(two.split("total: ")[1].split(" ")[0])
        assert t2 == pytest.approx(2 * t1, rel=0.01)

    def test_sum_file(self, netcycle_files, tmp_path, capsys):
        image, gmons = netcycle_files
        out_path = tmp_path / "gmon.sum"
        assert gprof_main(
            [str(image), str(gmons[0]), str(gmons[1]), "-s", str(out_path)]
        ) == 0
        summed = read_gmon(out_path)
        assert summed.runs == 2

    def test_timings_show_kernel_backend(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main(
            [str(image), str(gmons[0]), "--timings", "--kernels", "python"]
        ) == 0
        err = capsys.readouterr().err
        assert "pipeline timings" in err
        # the two kernel-served stages are tagged with the backend
        assert err.count("[python]") == 2
        for line in err.splitlines():
            if line.strip().startswith(("apportion", "propagate")):
                assert "[python]" in line

    def test_kernels_flag_rejects_unknown_backend(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main(
            [str(image), str(gmons[0]), "--kernels", "gpu"]
        ) == 1
        assert "unknown kernel backend" in capsys.readouterr().err

    def test_arc_deletion_flag(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main(
            [str(image), str(gmons[0]), "-k", "ip_output/ip_input"]
        ) == 0
        out = capsys.readouterr().out
        assert "arcs removed from the analysis" in out

    def test_bad_k_spec_errors(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main([str(image), str(gmons[0]), "-k", "nope"]) == 1
        assert "FROM/TO" in capsys.readouterr().err

    def test_break_cycles_flag(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main([str(image), str(gmons[0]), "-C", "3"]) == 0
        out = capsys.readouterr().out
        assert "ip_output -> ip_input" in out

    def test_exclude_flag(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main(
            [str(image), str(gmons[0]), "-E", "disk_io", "--flat-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "disk_io" not in out

    def test_static_flag_needs_executable(self, netcycle_files, tmp_path, capsys):
        image, gmons = netcycle_files
        exe_syms = assemble(netcycle(), profile=True).symbol_table()
        syms_path = tmp_path / "syms.json"
        exe_syms.save(syms_path)
        assert gprof_main([str(syms_path), str(gmons[0]), "--static"]) == 1
        assert "VM executable" in capsys.readouterr().err

    def test_symbol_table_image_works(self, netcycle_files, tmp_path, capsys):
        _, gmons = netcycle_files
        syms = assemble(netcycle(), profile=True).symbol_table()
        syms_path = tmp_path / "syms.json"
        syms.save(syms_path)
        assert gprof_main([str(syms_path), str(gmons[0])]) == 0
        assert "ip_input" in capsys.readouterr().out

    def test_focus_flag(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert gprof_main(
            [str(image), str(gmons[0]), "-f", "disk_io", "--graph-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "disk_io" in out
        # entries unrelated to disk_io's descendants are not shown
        assert "sock_send [" not in out

    def test_json_output(self, netcycle_files, tmp_path, capsys):
        import json as json_mod

        image, gmons = netcycle_files
        json_path = tmp_path / "profile.json"
        assert gprof_main(
            [str(image), str(gmons[0]), "--json", str(json_path)]
        ) == 0
        data = json_mod.loads(json_path.read_text())
        assert data["format"] == "repro-profile-1"
        assert any(e["name"] == "ip_input" for e in data["entries"])
        assert data["cycles"]  # the netstack cycle exported

    def test_dot_output(self, netcycle_files, tmp_path, capsys):
        image, gmons = netcycle_files
        dot_path = tmp_path / "graph.dot"
        assert gprof_main(
            [str(image), str(gmons[0]), "--dot", str(dot_path)]
        ) == 0
        text = dot_path.read_text()
        assert text.startswith("digraph profile")
        assert '"main"' in text
        assert "cluster_cycle1" in text

    def test_missing_file_errors(self, tmp_path, capsys):
        assert gprof_main([str(tmp_path / "no.vmexe"), "nope.gmon"]) == 1
        assert "repro-gprof:" in capsys.readouterr().err

    def test_corrupt_image_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"something": 1}))
        gmon = tmp_path / "x.gmon"
        from repro.core import Histogram, ProfileData

        write_gmon(ProfileData(Histogram(0, 0, [])), gmon)
        assert gprof_main([str(bad), str(gmon)]) == 1


class TestProfCli:
    def test_flat_table(self, netcycle_files, capsys):
        image, gmons = netcycle_files
        assert prof_main([str(image), str(gmons[0])]) == 0
        out = capsys.readouterr().out
        assert "%time" in out
        assert "disk_io" in out

    def test_missing_file(self, capsys):
        assert prof_main(["ghost.vmexe", "ghost.gmon"]) == 1


class TestKgmonCli:
    def test_stops_early_when_kernel_finishes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        # a tiny kernel cannot fill 50 windows; the CLI must stop at
        # the halt, having written however many it managed.
        assert kgmon_main(
            ["--iterations", "40", "--windows", "50",
             "--warmup-slices", "0", "--out-prefix", "tiny"]
        ) == 0
        out = capsys.readouterr().out
        written = out.count("window ")
        assert 1 <= written < 50

    def test_records_windows(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert kgmon_main(
            ["--iterations", "300", "--windows", "2", "--out-prefix", "kern"]
        ) == 0
        out = capsys.readouterr().out
        assert "window 0:" in out
        assert (tmp_path / "kern.syms").exists()
        assert (tmp_path / "kern.window0.gmon").exists()
        assert (tmp_path / "kern.window1.gmon").exists()

    def test_windows_analyzable_by_gprof_cli(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        kgmon_main(["--iterations", "300", "--windows", "1", "--out-prefix", "k"])
        capsys.readouterr()
        assert gprof_main(
            [
                "k.syms",
                "k.window0.gmon",
                "-k", "if_output/netisr",
                "-k", "tcp_input/tcp_output",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "tcp_output" in out
