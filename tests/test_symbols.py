"""Unit tests for repro.core.symbols."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.symbols import SPONTANEOUS, Symbol, SymbolTable
from repro.errors import SymbolError


class TestSymbol:
    def test_covers_half_open_range(self):
        sym = Symbol(100, "f", 200)
        assert sym.covers(100)
        assert sym.covers(199)
        assert not sym.covers(200)
        assert not sym.covers(99)

    def test_size(self):
        assert Symbol(100, "f", 260).size == 160

    def test_end_before_start_rejected(self):
        with pytest.raises(SymbolError):
            Symbol(100, "f", 50)

    def test_zero_end_means_unknown(self):
        assert Symbol(100, "f").size == 0


class TestSymbolTable:
    def test_find_inside_each_symbol(self):
        table = SymbolTable([Symbol(0, "a", 10), Symbol(10, "b", 30)])
        assert table.find(0).name == "a"
        assert table.find(9).name == "a"
        assert table.find(10).name == "b"
        assert table.find(29).name == "b"

    def test_find_outside_returns_none(self):
        table = SymbolTable([Symbol(10, "a", 20)])
        assert table.find(5) is None
        assert table.find(20) is None
        assert table.find(10_000) is None

    def test_find_in_gap_between_symbols(self):
        table = SymbolTable([Symbol(0, "a", 10), Symbol(50, "b", 60)])
        assert table.find(30) is None

    def test_unknown_ends_closed_to_next_symbol(self):
        # Entry-only symbol tables: a routine extends to its successor.
        table = SymbolTable([Symbol(0, "a"), Symbol(40, "b")])
        assert table.find(39).name == "a"
        assert table.find(40).name == "b"

    def test_last_symbol_with_unknown_end_covers_one_unit(self):
        table = SymbolTable([Symbol(0, "a")])
        assert table.find(0).name == "a"
        assert table.find(1) is None

    def test_overlap_rejected(self):
        with pytest.raises(SymbolError):
            SymbolTable([Symbol(0, "a", 20), Symbol(10, "b", 30)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SymbolError):
            SymbolTable([Symbol(0, "a", 10), Symbol(10, "a", 20)])

    def test_by_name_and_get(self):
        table = SymbolTable([Symbol(0, "a", 10)])
        assert table.by_name("a").address == 0
        assert table.get("missing") is None
        with pytest.raises(SymbolError):
            table.by_name("missing")

    def test_bounds(self):
        table = SymbolTable([Symbol(100, "a", 200), Symbol(200, "b", 350)])
        assert table.low_pc == 100
        assert table.high_pc == 350

    def test_empty_table(self):
        table = SymbolTable()
        assert len(table) == 0
        assert table.low_pc == 0
        assert table.high_pc == 0
        assert table.find(0) is None

    def test_iteration_sorted_by_address(self):
        table = SymbolTable([Symbol(200, "b", 300), Symbol(0, "a", 100)])
        assert [s.name for s in table] == ["a", "b"]

    def test_contains(self):
        table = SymbolTable([Symbol(0, "a", 10)])
        assert "a" in table
        assert "b" not in table

    def test_roundtrip_dict(self):
        table = SymbolTable(
            [Symbol(0, "a", 10, module="m1"), Symbol(10, "b", 30)]
        )
        again = SymbolTable.from_dict(table.to_dict())
        assert again == table
        assert again.by_name("a").module == "m1"

    def test_roundtrip_file(self, tmp_path):
        table = SymbolTable([Symbol(0, "a", 10), Symbol(10, "b", 30)])
        path = tmp_path / "syms.json"
        table.save(path)
        assert SymbolTable.load(path) == table

    def test_malformed_dict_raises(self):
        with pytest.raises(SymbolError):
            SymbolTable.from_dict({"nope": []})

    def test_spontaneous_is_not_a_symbol_name(self):
        # The pseudo-caller must never collide with real symbols.
        table = SymbolTable([Symbol(0, "a", 10)])
        assert SPONTANEOUS not in table


@given(
    st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=1,
        max_size=50,
        unique=True,
    ),
    st.integers(min_value=0, max_value=11_000),
)
def test_find_matches_linear_scan(starts, probe):
    """Property: bisection lookup agrees with a brute-force scan."""
    starts = sorted(starts)
    symbols = [
        Symbol(start, f"f{i}", end)
        for i, (start, end) in enumerate(zip(starts, starts[1:] + [starts[-1] + 7]))
        if end > start
    ]
    table = SymbolTable(symbols)
    expected = None
    for sym in symbols:
        if sym.covers(probe):
            expected = sym.name
    found = table.find(probe)
    assert (found.name if found else None) == expected
