"""Tests for the performance regression gate."""

import pytest

from repro.core import analyze
from repro.core.regress import Baseline, Rule, Violation, check, format_violations
from repro.errors import ReproError

from tests.helpers import make_symbols, profile_data


def _profile(ticks, arcs=None):
    symbols = make_symbols("main", "fast_path", "slow_path", "legacy")
    arcs = arcs or [
        ("<spontaneous>", "main", 1),
        ("main", "fast_path", 20),
        ("main", "slow_path", 2),
    ]
    return analyze(profile_data(symbols, arcs, ticks), symbols)


GOOD_TICKS = {"main": 6, "fast_path": 30, "slow_path": 24}


class TestBaselineCapture:
    def test_from_profile_with_headroom(self):
        profile = _profile(GOOD_TICKS)
        baseline = Baseline.from_profile(profile, headroom=1.5)
        rule = baseline.rule_for("slow_path")
        assert rule is not None
        assert rule.max_total_percent == pytest.approx(
            profile.entry("slow_path").percent * 1.5
        )
        assert rule.must_run

    def test_headroom_caps_at_100(self):
        profile = _profile(GOOD_TICKS)
        baseline = Baseline.from_profile(profile, headroom=10.0)
        assert baseline.rule_for("main").max_total_percent == 100.0

    def test_bad_headroom(self):
        with pytest.raises(ReproError):
            Baseline.from_profile(_profile(GOOD_TICKS), headroom=0.5)

    def test_roundtrip(self, tmp_path):
        baseline = Baseline.from_profile(_profile(GOOD_TICKS), comment="v1")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        back = Baseline.load(path)
        assert back.to_dict() == baseline.to_dict()

    def test_bad_format_rejected(self):
        with pytest.raises(ReproError, match="format"):
            Baseline.from_dict({"format": "nope", "rules": []})


class TestGate:
    def test_known_good_profile_passes_its_own_baseline(self):
        profile = _profile(GOOD_TICKS)
        baseline = Baseline.from_profile(profile, headroom=1.2)
        assert check(profile, baseline) == []
        assert "PASS" in format_violations([])

    def test_total_percent_regression_caught(self):
        baseline = Baseline.from_profile(
            _profile(GOOD_TICKS), headroom=1.1, min_percent=0.0
        )
        # slow_path blows up 4x
        bad = _profile({"main": 6, "fast_path": 30, "slow_path": 96})
        violations = check(bad, baseline)
        assert any(
            v.name == "slow_path" and v.rule == "max_total_percent"
            for v in violations
        )
        assert "FAIL" in format_violations(violations)

    def test_self_percent_rule(self):
        baseline = Baseline(
            rules=[Rule("fast_path", max_self_percent=10.0)]
        )
        violations = check(_profile(GOOD_TICKS), baseline)
        assert violations and violations[0].rule == "max_self_percent"

    def test_call_budget(self):
        baseline = Baseline(rules=[Rule("fast_path", max_calls=5)])
        (violation,) = check(_profile(GOOD_TICKS), baseline)
        assert violation.rule == "max_calls"
        assert violation.measured == 20

    def test_must_run_and_must_not_run(self):
        baseline = Baseline(
            rules=[Rule("legacy", must_not_run=True), Rule("fast_path", must_run=True)]
        )
        # good: legacy absent, fast_path present
        assert check(_profile(GOOD_TICKS), baseline) == []
        # bad: legacy got called again
        regressed = _profile(
            GOOD_TICKS,
            arcs=[
                ("<spontaneous>", "main", 1),
                ("main", "fast_path", 20),
                ("main", "legacy", 1),
            ],
        )
        violations = check(regressed, baseline)
        assert violations[0].rule == "must_not_run"

    def test_coverage_failures_sort_first(self):
        baseline = Baseline(
            rules=[
                Rule("fast_path", max_calls=5),
                Rule("ghost", must_run=True),
            ]
        )
        violations = check(_profile(GOOD_TICKS), baseline)
        assert violations[0].rule == "must_run"

    def test_rule_for_unknown_routine_ignored(self):
        baseline = Baseline(rules=[Rule("not_in_profile", max_calls=1)])
        assert check(_profile(GOOD_TICKS), baseline) == []


class TestEndToEnd:
    def test_gate_on_real_workload(self, tmp_path):
        from repro.lang import compile_source
        from repro.machine import CPU, Monitor, MonitorConfig

        SRC_FAST = """
func lookup(k) { burn 8; return k; }
func main() {
    i = 0;
    while (i < 40) { lookup(i); i = i + 1; }
}
"""
        SRC_SLOW = SRC_FAST.replace("burn 8;", "burn 80;")

        def run(src):
            exe = compile_source(src, profile=True)
            mon = Monitor(
                MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10)
            )
            CPU(exe, mon).run()
            return analyze(mon.mcleanup(), exe.symbol_table())

        good = run(SRC_FAST)
        baseline = Baseline.from_profile(good, headroom=1.3)
        baseline.save(tmp_path / "baseline.json")
        reloaded = Baseline.load(tmp_path / "baseline.json")
        assert check(run(SRC_FAST), reloaded) == []
        violations = check(run(SRC_SLOW), reloaded)
        assert any(v.name == "lookup" for v in violations)
