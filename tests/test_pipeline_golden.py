"""The golden gate: the staged pipeline is behavior-preserving.

The fixtures under ``tests/golden/`` were frozen from the pre-refactor
monolithic ``analyze()`` (see :mod:`tests.pipeline_golden`).  Every
canned program's flat + call-graph listing must be byte-identical to
its fixture — with no cache, with a cold cache, and with a warm cache —
and the JSON trace must be deterministic modulo its timing fields.
"""

from __future__ import annotations

import json

import pytest

from repro.machine.programs import PROGRAMS
from repro.pipeline import AnalysisCache, PipelineTrace, STAGES

from tests.pipeline_golden import (
    VARIANTS,
    analysis_options,
    canned_profile_data,
    compute_listing,
    golden_path,
    listings,
)

ALL_CASES = [
    (name, variant) for name in sorted(PROGRAMS) for variant in VARIANTS
]


def golden_text(name: str, variant: str) -> str:
    path = golden_path(name, variant)
    assert path.exists(), (
        f"missing golden fixture {path}; regenerate deliberately with "
        "`PYTHONPATH=src python -m tests.pipeline_golden`"
    )
    return path.read_text(encoding="utf-8")


@pytest.mark.parametrize("name,variant", ALL_CASES)
def test_listing_matches_golden_without_cache(name, variant):
    assert compute_listing(name, variant) == golden_text(name, variant)


@pytest.mark.parametrize("name,variant", ALL_CASES)
def test_listing_matches_golden_cold_and_warm(name, variant):
    """One shared cache: first run cold, second fully warm — both must
    render the frozen bytes, and the warm run must actually hit."""
    want = golden_text(name, variant)
    cache = AnalysisCache()
    assert compute_listing(name, variant, cache=cache) == want

    trace = PipelineTrace()
    assert compute_listing(name, variant, cache=cache, trace=trace) == want
    assert all(s.cached for s in trace.stages)
    assert trace.cache_misses == 0
    assert trace.cache_hits > 0


def test_trace_records_every_stage_in_order():
    exe, data = canned_profile_data("fib")
    trace = PipelineTrace()
    from repro.core import analyze

    analyze(data, exe.symbol_table(), trace=trace)
    assert trace.stage_names() == [s.name for s in STAGES]
    assert all(s.seconds >= 0 for s in trace.stages)
    assert not any(s.cached for s in trace.stages)
    assert trace.total_seconds == sum(s.seconds for s in trace.stages)


def test_trace_json_is_deterministic_modulo_timing():
    """Two runs over identical inputs: stable dicts equal, full dicts
    differ only in the timing fields."""
    from repro.core import analyze

    stable = []
    for _ in range(2):
        exe, data = canned_profile_data("even_odd")
        trace = PipelineTrace()
        analyze(data, exe.symbol_table(),
                analysis_options(exe, "static"), trace=trace)
        parsed = json.loads(trace.render_json())
        parsed.pop("total_seconds")
        for s in parsed["stages"]:
            s.pop("seconds")
        stable.append(parsed)
        assert parsed == trace.stable_dict()
    assert stable[0] == stable[1]


def test_stage_counters_survive_caching():
    """A cached stage replays the counters of the run that computed it."""
    from repro.core import analyze

    exe, data = canned_profile_data("deep")
    cache = AnalysisCache()
    cold_trace = PipelineTrace()
    analyze(data, exe.symbol_table(), trace=cold_trace, cache=cache)
    warm_trace = PipelineTrace()
    analyze(data, exe.symbol_table(), trace=warm_trace, cache=cache)
    assert warm_trace.stable_dict()["stages"] == [
        {**s, "cached": True}
        for s in cold_trace.stable_dict()["stages"]
    ]


def test_gprof_cli_timings_and_trace(tmp_path, capsys):
    """repro-gprof --timings prints the stage table; --trace writes the
    JSON trace; the listings on stdout stay untouched."""
    from repro.cli.gprof_cli import main
    from repro.gmon import write_gmon

    exe, data = canned_profile_data("fib")
    image = tmp_path / "fib.vmexe"
    gmon = tmp_path / "gmon.out"
    exe.save(image)
    write_gmon(data, gmon)
    trace_file = tmp_path / "trace.json"

    assert main([str(image), str(gmon)]) == 0
    plain = capsys.readouterr()

    assert main([str(image), str(gmon), "--timings",
                 "--trace", str(trace_file)]) == 0
    traced = capsys.readouterr()

    assert traced.out == plain.out  # listings unchanged
    assert "pipeline timings" in traced.err
    for stage in STAGES:
        assert stage.name in traced.err

    blob = json.loads(trace_file.read_text(encoding="utf-8"))
    assert blob["format"] == "repro-pipeline-trace-1"
    assert [s["name"] for s in blob["stages"]] == [s.name for s in STAGES]
    assert all("seconds" in s and "counters" in s for s in blob["stages"])


def test_cached_profile_is_shared_and_identical():
    """A full-hit analyze returns the same Profile object (documented
    shared/treat-as-immutable semantics)."""
    from repro.core import analyze

    exe, data = canned_profile_data("hanoi")
    cache = AnalysisCache()
    first = analyze(data, exe.symbol_table(), cache=cache)
    second = analyze(data, exe.symbol_table(), cache=cache)
    assert second is first
    assert listings(second) == listings(first)
