"""Tests for Python static-arc extraction and the script runner."""

import textwrap

from repro.core import AnalysisOptions, SymbolTable, analyze
from repro.gmon import read_gmon
from repro.pyprof import profile_call, static_arcs
from repro.pyprof.runner import main as runner_main
from repro.pyprof.runner import run_script


# module-level helpers so qualnames are simple
def never_called():
    return 1


def sometimes(flag):
    if flag:
        return never_called()
    return 0


def caller():
    return sometimes(False)


class TestStaticArcs:
    def test_apparent_call_found_even_if_untraversed(self):
        pairs = static_arcs([sometimes, never_called, caller])
        assert ("sometimes", "never_called") in pairs
        assert ("caller", "sometimes") in pairs

    def test_restricted_to_known_names(self):
        pairs = static_arcs([sometimes], known_names={"never_called"})
        assert pairs == {("sometimes", "never_called")}

    def test_nested_code_objects(self):
        def outer():
            def inner():
                return 1

            return inner

        pairs = static_arcs(
            [outer],
            known_names={
                "TestStaticArcs.test_nested_code_objects.<locals>.outer.<locals>.inner"
            },
        )
        assert len(pairs) == 1

    def test_static_arcs_integrate_with_analysis(self):
        _, data, syms = profile_call(caller)
        known = {s.name for s in syms}
        extra_syms = list(syms)
        # never_called was never traced: add it to the table by scanning.
        if "never_called" not in known:
            from repro.core.symbols import Symbol

            high = syms.high_pc
            extra_syms.append(Symbol(high, "never_called", high + 8))
        table = SymbolTable(extra_syms)
        pairs = static_arcs([sometimes, caller], known_names={s.name for s in table})
        profile = analyze(data, table, AnalysisOptions(static_arcs=sorted(pairs)))
        line = next(
            c for c in profile.entry("sometimes").children if c.name == "never_called"
        )
        assert line.count == 0


class TestRunner:
    SCRIPT = textwrap.dedent(
        """
        def work(n):
            return sum(i * i for i in range(n))

        def main():
            return work(500) + work(300)

        if __name__ == "__main__":
            main()
        """
    )

    def test_run_script_writes_data_and_symbols(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        script = tmp_path / "prog.py"
        script.write_text(self.SCRIPT)
        run_script(str(script), [])
        data = read_gmon(tmp_path / "gmon.out")
        syms = SymbolTable.load(tmp_path / "gmon.syms")
        profile = analyze(data, syms)
        assert profile.entry("work").ncalls == 2

    def test_cli_main(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        script = tmp_path / "prog.py"
        script.write_text(self.SCRIPT)
        assert runner_main([str(script)]) == 0
        out = capsys.readouterr().out
        assert "profile data written" in out
        assert (tmp_path / "gmon.out").exists()

    def test_script_argv_passed_through(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        script = tmp_path / "argv.py"
        script.write_text(
            "import sys, pathlib\n"
            "pathlib.Path('args.txt').write_text(' '.join(sys.argv[1:]))\n"
        )
        run_script(str(script), ["alpha", "beta"])
        assert (tmp_path / "args.txt").read_text() == "alpha beta"
