"""Tests for projecting stack samples onto classic profile data."""

import pytest

from repro.core import analyze
from repro.machine.programs import even_odd, skewed
from repro.report import format_graph_profile
from repro.stacks import StackProfile, analyze_stacks
from repro.stacks.convert import as_profile_data
from repro.stacks.vm import run_stack_profiled


class TestProjection:
    def _toy(self):
        p = StackProfile(profrate=100)
        for _ in range(6):
            p.record(("main", "a", "leaf"))
        for _ in range(3):
            p.record(("main", "b", "leaf"))
        p.record(("main",))
        return p

    def test_histogram_holds_leaf_ticks(self):
        data, symbols = as_profile_data(self._toy())
        times = data.histogram.assign_samples(symbols)
        assert times["leaf"] == pytest.approx(0.09)
        assert times["main"] == pytest.approx(0.01)
        assert data.total_ticks == 10

    def test_arcs_carry_coresidence_counts(self):
        data, symbols = as_profile_data(self._toy())
        profile = analyze(data, symbols)
        leaf = profile.entry("leaf")
        parents = {p.name: p.count for p in leaf.parents}
        assert parents == {"a": 6, "b": 3}

    def test_roots_are_spontaneous(self):
        data, symbols = as_profile_data(self._toy())
        profile = analyze(data, symbols)
        main = profile.entry("main")
        assert main.parents[0].name is None
        assert main.percent == pytest.approx(100.0)

    def test_caveat_recorded_in_comment(self):
        data, _ = as_profile_data(self._toy())
        assert "not calls" in data.comment

    def test_recursive_stack_edges_deduplicated(self):
        p = StackProfile(100)
        p.record(("a", "b", "a", "b"))
        data, symbols = as_profile_data(p)
        profile = analyze(data, symbols)
        arc = profile.graph.arc("a", "b")
        assert arc.count == 1  # one sample, one co-residence


class TestAttributionQuality:
    def test_projection_dodges_the_average_time_pitfall(self):
        # Classic propagation over co-residence weights approximates the
        # stack-exact attribution: the skewed workload's two callers
        # come out near 50/50 instead of 99/1.
        cpu, stacks = run_stack_profiled(skewed(), "skewed", cycles_per_tick=7)
        data, symbols = as_profile_data(stacks)
        profile = analyze(data, symbols)
        work = profile.entry("work_n")
        shares = {
            p.name: p.self_share + p.child_share for p in work.parents
        }
        total = sum(shares.values())
        assert 0.3 < shares["dear_caller"] / total < 0.6

    def test_figure4_style_listing_renders_on_stack_data(self):
        cpu, stacks = run_stack_profiled(even_odd(25), "eo", cycles_per_tick=3)
        data, symbols = as_profile_data(stacks)
        profile = analyze(data, symbols)
        text = format_graph_profile(profile)
        assert "even" in text
        assert "<cycle 1 as a whole>" in text  # recursion still collapses

    def test_totals_agree_with_stack_analysis(self):
        cpu, stacks = run_stack_profiled(even_odd(25), "eo", cycles_per_tick=3)
        data, symbols = as_profile_data(stacks)
        profile = analyze(data, symbols)
        an = analyze_stacks(stacks)
        assert profile.total_seconds == pytest.approx(stacks.total_seconds)
        # self time per routine identical (leaf ticks either way)
        for name in stacks.routines():
            entry = profile.entry(name)
            assert entry.self_seconds == pytest.approx(
                an.exclusive_seconds(name)
            )
