"""Tests for the staged pass pipeline behind the optimizer facade."""

import warnings
from dataclasses import replace

import pytest

from repro.errors import LangError
from repro.lang import ast, optimize
from repro.lang.codegen import generate
from repro.lang.parser import parse
from repro.lang.passes import (
    BranchOrderPass,
    ConstFoldPass,
    DeadCodePass,
    HotColdLayoutPass,
    InlinePass,
    PassTrace,
    build_pipeline,
    merge_counters,
    run_passes,
)

SRC = """
func square(x) { return x * x; }
func main() {
    i = 0;
    while (i < 10) { i = i + square(2); }
    print i + 0;
}
"""


def names(passes):
    return [p.name for p in passes]


class TestPipelineConstruction:
    def test_level_0_is_empty(self):
        assert build_pipeline(0) == []

    def test_level_1_folds_and_prunes(self):
        assert names(build_pipeline(1)) == ["const-fold", "dead-code"]

    def test_level_2_adds_static_inlining(self):
        passes = build_pipeline(2)
        assert names(passes) == ["const-fold", "dead-code", "inline"]
        assert passes[-1].static

    def test_feedback_brackets_the_pipeline(self):
        # branch-order first (ordinals match the measured tree shape),
        # layout last (after inlining may delete routines).
        from repro.lang.feedback import ProfileFeedback

        passes = build_pipeline(1, ProfileFeedback())
        assert names(passes) == [
            "branch-order", "const-fold", "dead-code", "inline",
            "hot-cold-layout",
        ]
        assert not passes[-2].static  # profile replaces the heuristic

    def test_unknown_level_rejected(self):
        with pytest.raises(LangError, match="unknown optimization level"):
            build_pipeline(3)

    def test_requires_provides_enforced(self):
        # dead-code requires "folded"; running it alone is a pipeline
        # construction bug, caught up front like the analysis stages.
        with pytest.raises(LangError, match="requires"):
            run_passes(parse(SRC), [DeadCodePass()])

    def test_traces_and_merge(self):
        _, traces = run_passes(parse(SRC), build_pipeline(1))
        assert [t.name for t in traces] == ["const-fold", "dead-code"]
        assert all(isinstance(t, PassTrace) for t in traces)
        merged = merge_counters(traces)
        assert all("." in key for key in merged)


class TestFacade:
    def test_default_is_level_1(self):
        program = parse(SRC)
        assert generate(optimize(program)) == generate(
            optimize(program, level=1)
        )

    def test_level_0_is_identity(self):
        program = parse(SRC)
        assert generate(optimize(program, level=0)) == generate(program)

    def test_historical_positional_bool_means_inline(self):
        # the pre-pipeline spelling optimize(program, True)
        program = parse(SRC)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert generate(optimize(program, True)) == generate(
                optimize(program, level=2)
            )
            assert generate(optimize(program, False)) == generate(
                optimize(program, level=1)
            )

    def test_inline_kwarg_warns_exactly_once(self):
        import importlib

        optimize_module = importlib.import_module("repro.lang.optimize")
        program = parse(SRC)
        optimize_module._warned_inline_kwarg = False
        try:
            with pytest.warns(DeprecationWarning, match="level=2"):
                optimize(program, inline=True)
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                optimize(program, inline=False)  # second use: silent
        finally:
            optimize_module._warned_inline_kwarg = False

    def test_inline_kwarg_maps_to_levels(self):
        program = parse(SRC)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert generate(optimize(program, inline=True)) == generate(
                optimize(program, level=2)
            )
            assert generate(optimize(program, inline=False)) == generate(
                optimize(program, level=1)
            )


class TestHintPreservation:
    """Layout hints stamped by branch-order must survive later passes."""

    def _hinted(self):
        program = parse(
            "func main() {"
            " x = 1 + 2;"
            " if (x > 0) { print 1 * x; } else { print 0; }"
            " while (x > 0) { x = x - 1; }"
            "}"
        )
        fn = program.functions[0]
        body = []
        for stmt in fn.body:
            if isinstance(stmt, ast.If):
                stmt = replace(stmt, likely="then")
            elif isinstance(stmt, ast.While):
                stmt = replace(stmt, rotate=True)
            body.append(stmt)
        return replace(
            program, functions=(replace(fn, body=tuple(body)),)
        )

    def _hints_of(self, program):
        fn = program.functions[0]
        likely = [s.likely for s in fn.body if isinstance(s, ast.If)]
        rotate = [s.rotate for s in fn.body if isinstance(s, ast.While)]
        return likely, rotate

    def test_fold_and_deadcode_keep_hints(self):
        optimized, _ = run_passes(
            self._hinted(), [ConstFoldPass(), DeadCodePass()]
        )
        likely, rotate = self._hints_of(optimized)
        assert likely == ["then"]
        assert rotate == [True]

    def test_hinted_lowering_changes_layout_not_behaviour(self):
        from repro.machine import CPU, assemble

        plain = parse(
            "func main() {"
            " x = 5;"
            " if (x > 0) { print 1; } else { print 0; }"
            " while (x > 0) { x = x - 1; }"
            " print x;"
            "}"
        )
        hinted = self._stamp_all(plain)
        asm_plain, asm_hinted = generate(plain), generate(hinted)
        assert asm_plain != asm_hinted  # layout moved
        outs = []
        for asm in (asm_plain, asm_hinted):
            cpu = CPU(assemble(asm))
            cpu.run()
            outs.append((list(cpu.output), list(cpu.globals)))
        assert outs[0] == outs[1]

    def _stamp_all(self, program):
        fn = program.functions[0]
        body = tuple(
            replace(s, likely="then") if isinstance(s, ast.If)
            else replace(s, rotate=True) if isinstance(s, ast.While)
            else s
            for s in fn.body
        )
        return replace(program, functions=(replace(fn, body=body),))


class TestProfilePassesWithoutData:
    """Empty/stale feedback must make every profile pass the identity."""

    def _empty_feedback(self):
        from repro.lang.feedback import ProfileFeedback

        return ProfileFeedback()  # zero ticks, zero calls -> empty

    @pytest.mark.parametrize(
        "make_pass",
        [BranchOrderPass, HotColdLayoutPass, lambda: InlinePass(static=False)],
        ids=["branch-order", "layout", "pgo-inline"],
    )
    def test_pass_no_ops_on_empty_feedback(self, make_pass):
        program = parse(SRC)
        counters = {}
        out = make_pass().run(program, self._empty_feedback(), counters)
        assert generate(out) == generate(program)
        assert not any(counters.values())

    def test_level_0_with_empty_feedback_is_identity(self):
        program = parse(SRC)
        out, _ = run_passes(
            program,
            build_pipeline(0, self._empty_feedback()),
            self._empty_feedback(),
        )
        assert generate(out) == generate(program)
