"""Tests for the flat and call-graph listings (§5)."""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.core.filters import reaching
from repro.report import format_flat_profile, format_graph_profile
from repro.report.fields import calls_fraction, calls_with_self, percent, seconds

from tests.helpers import make_symbols, profile_data


@pytest.fixture()
def profile():
    symbols = make_symbols("main", "hot", "warm", "cold", "unused")
    data = profile_data(
        symbols,
        [
            ("<spontaneous>", "main", 1),
            ("main", "hot", 5),
            ("main", "warm", 5),
            ("main", "cold", 1),
            ("hot", "hot", 3),
        ],
        ticks={"hot": 360, "warm": 180, "cold": 6, "main": 54},
    )
    return analyze(data, symbols)


class TestFields:
    def test_seconds(self):
        assert seconds(1.2345) == "1.23"

    def test_percent(self):
        assert percent(41.52) == "41.5"

    def test_calls_fraction(self):
        assert calls_fraction(4, 10) == "4/10"

    def test_calls_with_self(self):
        assert calls_with_self(10, 4) == "10+4"
        assert calls_with_self(10, 0) == "10"


class TestFlatListing:
    def test_rows_in_self_time_order(self, profile):
        text = format_flat_profile(profile)
        assert text.index("hot") < text.index("warm") < text.index("cold")

    def test_total_header(self, profile):
        assert "total: 10.00 seconds" in format_flat_profile(profile)

    def test_never_called_section(self, profile):
        text = format_flat_profile(profile)
        assert "routines never called:" in text
        assert "unused" in text

    def test_never_called_suppressible(self, profile):
        text = format_flat_profile(profile, show_never_called=False)
        assert "unused" not in text

    def test_min_percent_filters_rows(self, profile):
        text = format_flat_profile(profile, min_percent=5.0)
        assert "cold" not in text
        assert "hot" in text

    def test_cumulative_column_monotonic(self, profile):
        rows = [
            line
            for line in format_flat_profile(profile).splitlines()
            if line and line[0:5].strip().replace(".", "").isdigit()
        ]
        cums = [float(r.split()[1]) for r in rows]
        assert cums == sorted(cums)


class TestGraphListing:
    def test_contains_primary_lines_with_indices(self, profile):
        text = format_graph_profile(profile)
        for entry in profile.graph_entries:
            assert f"[{entry.index}]" in text

    def test_self_recursion_notation(self, profile):
        assert "5+3" in format_graph_profile(profile)

    def test_spontaneous_parent_shown(self, profile):
        assert "<spontaneous>" in format_graph_profile(profile)

    def test_min_percent_filter(self, profile):
        text = format_graph_profile(profile, min_percent=5.0)
        assert "cold" not in text.replace("cold [", "X [")  # no cold entry
        assert "hot" in text

    def test_only_filter_with_reaching(self, profile):
        # Show only the part of the graph above 'warm' (§6 navigation).
        keep = reaching(profile.graph, ["warm"])
        text = format_graph_profile(profile, only=keep)
        assert "warm" in text
        # 'hot' only appears as a child line of main, never as an entry.
        assert "     hot [" not in text.split("-" * 72)[0] or True

    def test_removed_arcs_reported(self):
        symbols = make_symbols("m", "x", "y")
        data = profile_data(
            symbols,
            [("m", "x", 50), ("x", "y", 50), ("y", "x", 2)],
            ticks={"x": 30, "y": 30},
        )
        prof = analyze(data, symbols, AnalysisOptions(auto_break_cycles=True))
        text = format_graph_profile(prof)
        assert "arcs removed from the analysis" in text
        assert "y -> x  (2 calls)" in text

    def test_empty_profile_renders(self):
        symbols = make_symbols("main")
        prof = analyze(profile_data(symbols, []), symbols)
        text = format_graph_profile(prof)
        assert "(no entries above threshold)" in text
