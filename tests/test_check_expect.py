"""GP610-GP612 and the §6 confidence: measurement vs. static prediction.

Each expectation checker must fire on a doctored gmon artifact and stay
silent on data the image really could have produced; the sampling
confidence must follow the paper's error-proportional-to-sqrt(samples)
statement; and per-profile findings must group deterministically by
their source label.
"""

from __future__ import annotations

import math

import pytest

from repro.check import check_executable, sampling_confidence
from repro.check.diagnostics import CheckReport, make
from repro.check.expect import (
    check_call_count_bounds,
    check_impossible_arcs,
    check_samples_in_dead_code,
    expect_passes,
)
from repro.check.flow import analyze_flow
from repro.core import Histogram, ProfileData, RawArc, analyze
from repro.machine import assemble
from repro.machine.isa import Op

from tests.helpers import make_symbols, profile_data

DISPATCH_SRC = (
    ".func main\n PUSH &f\n CALLI\n HALT\n.end\n"
    ".func f\n RET\n.end\n"
    ".func g\n RET\n.end\n"
)

TWO_CALLS_SRC = (
    ".func main\n CALL f\n CALL f\n HALT\n.end\n"
    ".func f\n RET\n.end\n"
)

LOOPED_CALL_SRC = (
    ".func main\n CALL f\n GLOAD 0\n JNZ main\n HALT\n.end\n"
    ".func f\n RET\n.end\n"
)

DEAD_ARM_SRC = (
    ".func main\n PUSH 1\n JNZ skip\n WORK 5\nskip:\n HALT\n.end\n"
)


def empty_data(exe) -> ProfileData:
    hist = Histogram.for_range(exe.low_pc, exe.high_pc, 1.0, 100)
    return ProfileData(hist)


def calli_address(exe) -> int:
    from repro.machine.isa import INSTRUCTION_SIZE

    return next(
        i * INSTRUCTION_SIZE
        for i, ins in enumerate(exe.instructions)
        if ins.op is Op.CALLI
    )


# -- GP610: impossible arcs ---------------------------------------------------


class TestImpossibleArcs:
    def test_fires_on_non_candidate_callee(self):
        exe = assemble(DISPATCH_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.arcs.append(
            RawArc(calli_address(exe), exe.function_named("g").entry, 3)
        )
        (finding,) = check_impossible_arcs(exe, data, flow)
        assert finding.code == "GP610"
        assert "address-taken" in finding.message
        assert finding.routine == "main"

    def test_silent_on_candidate_callee(self):
        exe = assemble(DISPATCH_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.arcs.append(
            RawArc(calli_address(exe), exe.function_named("f").entry, 3)
        )
        assert check_impossible_arcs(exe, data, flow) == []

    def test_silent_when_no_addresses_are_taken(self):
        # Opaque indirect calls are GP104's gap, not GP610's claim.
        exe = assemble(
            ".func main\n GLOAD 0\n CALLI\n HALT\n.end\n"
            ".func f\n RET\n.end\n"
        )
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.arcs.append(
            RawArc(calli_address(exe), exe.function_named("f").entry, 1)
        )
        assert check_impossible_arcs(exe, data, flow) == []

    def test_direct_calls_left_to_gp307(self):
        exe = assemble(TWO_CALLS_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.arcs.append(RawArc(0, exe.function_named("f").entry, 1))
        assert check_impossible_arcs(exe, data, flow) == []


# -- GP611: samples in dead code ----------------------------------------------


class TestSamplesInDeadCode:
    def test_fires_on_tick_inside_dead_block(self):
        exe = assemble(DEAD_ARM_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        assert data.histogram.record(9)  # inside the dead WORK block
        (finding,) = check_samples_in_dead_code(exe, data, flow)
        assert finding.code == "GP611"
        assert "cannot have been there" in finding.message

    def test_silent_on_ticks_in_live_code(self):
        exe = assemble(DEAD_ARM_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        assert data.histogram.record(0)
        assert check_samples_in_dead_code(exe, data, flow) == []

    def test_straddling_bucket_gets_the_benefit_of_the_doubt(self):
        exe = assemble(DEAD_ARM_SRC)
        flow = analyze_flow(exe)
        # One bucket spanning the whole text: it overlaps live code,
        # so its ticks could legitimately belong to the live side.
        hist = Histogram.for_range(
            exe.low_pc, exe.high_pc, 1.0 / (exe.high_pc - exe.low_pc), 100
        )
        assert hist.num_buckets == 1
        assert hist.record(9)
        data = ProfileData(hist)
        assert check_samples_in_dead_code(exe, data, flow) == []


# -- GP612: call-count bounds -------------------------------------------------


class TestCallCountBounds:
    def test_fires_on_inflated_loop_free_arc(self):
        exe = assemble(TWO_CALLS_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        f = exe.function_named("f").entry
        data.arcs += [RawArc(0, f, 3), RawArc(4, f, 3)]
        (finding,) = check_call_count_bounds(exe, data, flow)
        assert finding.code == "GP612"
        assert "at most 2 call(s) possible" in finding.message

    def test_silent_within_the_bound(self):
        exe = assemble(TWO_CALLS_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        f = exe.function_named("f").entry
        data.arcs += [RawArc(0, f, 1), RawArc(4, f, 1)]
        assert check_call_count_bounds(exe, data, flow) == []

    def test_looped_sites_are_unbounded(self):
        exe = assemble(LOOPED_CALL_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.arcs.append(RawArc(0, exe.function_named("f").entry, 100000))
        assert check_call_count_bounds(exe, data, flow) == []

    def test_activations_scale_the_bound(self):
        exe = assemble(TWO_CALLS_SRC)
        flow = analyze_flow(exe)
        data = empty_data(exe)
        data.runs = 3  # three summed runs: 2 sites x 3 activations
        f = exe.function_named("f").entry
        data.arcs += [RawArc(0, f, 3), RawArc(4, f, 3)]
        assert check_call_count_bounds(exe, data, flow) == []


# -- wiring ------------------------------------------------------------------


def test_expect_passes_compose_all_three():
    exe = assemble(DEAD_ARM_SRC)
    data = empty_data(exe)
    assert data.histogram.record(9)
    findings = expect_passes(exe, data)
    assert {d.code for d in findings} == {"GP611"}


def test_check_executable_labels_profile_findings_with_source():
    exe = assemble(DEAD_ARM_SRC)
    bad = empty_data(exe)
    assert bad.histogram.record(9)
    good = empty_data(exe)
    report = check_executable(
        exe, [good, bad], ["good.gmon", "bad.gmon"], flow=True
    )
    gp611 = [d for d in report if d.code == "GP611"]
    (finding,) = gp611
    assert finding.source == "bad.gmon"
    # The image-level GP601/GP605 findings carry no source label.
    assert all(
        d.source is None for d in report if d.code in ("GP601", "GP605")
    )


def test_diagnostics_sort_by_source_then_address_then_code():
    exe_level = make("GP101", "m", address=8)
    b_file = make("GP301", "m", address=4, source="b.gmon")
    a_late = make("GP611", "m", address=4, source="a.gmon")
    a_early = make("GP601", "m", address=4, source="a.gmon")
    a_first = make("GP612", "m", source="a.gmon")  # no address: first
    report = CheckReport(
        "p", [b_file, a_late, exe_level, a_early, a_first]
    )
    assert [(d.source, d.address, d.code) for d in report] == [
        (None, 8, "GP101"),
        ("a.gmon", None, "GP612"),
        ("a.gmon", 4, "GP601"),
        ("a.gmon", 4, "GP611"),
        ("b.gmon", 4, "GP301"),
    ]


def test_render_prefixes_the_source_label():
    d = make("GP611", "boom", address=8, routine="main", source="x.gmon")
    assert d.render().startswith("x.gmon:0x0008:main: error: GP611:")
    assert d.to_dict()["source"] == "x.gmon"


# -- §6 sampling confidence ---------------------------------------------------


class TestSamplingConfidence:
    def test_error_is_sqrt_of_samples_periods(self):
        symbols = make_symbols("main", "leaf")
        data = profile_data(
            symbols, [("<spontaneous>", "main", 1)],
            ticks={"main": 100, "leaf": 1}, profrate=100,
        )
        exe = _exe_like(symbols)
        confidence = sampling_confidence(exe, data)
        assert confidence["main"] == pytest.approx(math.sqrt(100) / 100)
        assert confidence["leaf"] == pytest.approx(math.sqrt(1) / 100)

    def test_empty_histogram_has_no_confidence(self):
        exe = assemble(TWO_CALLS_SRC)
        hist = Histogram(0, 0, [], 100)
        assert sampling_confidence(exe, ProfileData(hist)) == {}

    def test_flat_profile_annotates_uncertain_rows(self):
        from repro.report import format_flat_profile

        symbols = make_symbols("main", "leaf")
        data = profile_data(
            symbols, [("<spontaneous>", "main", 1), ("main", "leaf", 2)],
            ticks={"main": 100, "leaf": 1}, profrate=100,
        )
        profile = analyze(data, symbols)
        exe = _exe_like(symbols)
        confidence = sampling_confidence(exe, data)
        text = format_flat_profile(profile, confidence=confidence)
        assert "(±0.10s)" in text  # main: 100 ticks at 100 Hz
        assert "below sampling noise" in text  # leaf: 1 tick
        plain = format_flat_profile(profile)
        assert "±" not in plain  # None keeps the classic listing


def _exe_like(symbols):
    """A stand-in with just the symbol_table() the confidence math uses."""

    class _Stub:
        def symbol_table(self):
            return symbols

    return _Stub()
